//! Min-plus deconvolution `⊘`.
//!
//! `(f ⊘ g)(t) = sup_{u ≥ 0} { f(t + u) − g(u) }` computes output
//! arrival bounds: the flow leaving a server with service curve `β` and
//! input constrained by `α` is constrained by `α ⊘ β` (§3 of the paper;
//! we implement the paper's output-flow bound `α* = (α ⊗ γ) ⊘ β`, see
//! [`crate::bounds`]).
//!
//! # Conventions
//!
//! * Candidates `u` where `g(u) = +∞` contribute nothing to the
//!   supremum (an infinite service imposes no constraint).
//! * If both operands' ultimate growth rates are finite and
//!   `rate(f) > rate(g)`, the supremum is `+∞` for every `t` — this is
//!   the paper's overload case `R_α > R_β` where bounds diverge.
//!
//! # Algorithm
//!
//! [`min_plus_deconv`] dispatches on the operands' shape:
//!
//! * `f ⊘ δ_T` is a left shift: `t ↦ f(t + T)` — `O(n)`;
//! * concave `f` deconvolved by a rate-latency `RL(R, T)` has a closed
//!   form: a line of slope `R` up to the slope-crossing point
//!   `s* = inf { s : f'(s) ≤ R }` shifted by `T`, then `f(t + T)` —
//!   `O(n)`;
//! * everything else runs the general algorithm.
//!
//! The general algorithm mirrors [convolution](super::conv): result
//! breakpoints lie among the pairwise differences
//! `{x_i − y_j} ∩ [0, ∞)`, and between candidates the deconvolution is
//! the *upper envelope* of finitely many affine strategies (supremum
//! pinned at a breakpoint of `g`, at `u = x_i − t` for a breakpoint of
//! `f`, or at the tail `u → ∞`). It stays available unconditionally as
//! [`min_plus_deconv_general`], the property-test oracle for the fast
//! paths.

use crate::curve::pwl::{Breakpoint, Curve};
use crate::num::{Rat, Value};

use super::conv::{as_pure_delay, is_concave, push_line};
use super::envelope::{upper_envelope, Line};

/// Exact min-plus deconvolution of two wide-sense increasing curves.
///
/// Dispatches to closed forms where the operands' shape allows and
/// otherwise runs the general strategy-envelope algorithm. Always
/// agrees exactly with [`min_plus_deconv_general`].
pub fn min_plus_deconv(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_wide_sense_increasing());
    debug_assert!(g.is_wide_sense_increasing());

    // Overload: with both tails finite and f growing strictly faster
    // than g, the supremum diverges for every t.
    if let (Value::Finite(rf), Value::Finite(rg)) = (f.ultimate_slope(), g.ultimate_slope()) {
        if rf > rg {
            return infinite_curve();
        }
    }

    // Fast path: deconvolving by a pure delay shifts left.
    if let Some(t) = as_pure_delay(g) {
        return shift_left(f, t);
    }
    // Fast path: concave ⊘ rate-latency closed form.
    if is_concave(f) {
        if let Some((r, t)) = as_rate_latency(g) {
            return deconv_concave_rl(f, r, t);
        }
    }
    deconv_general_impl(f, g)
}

/// The general strategy-envelope deconvolution with no shape dispatch:
/// the reference oracle the fast paths are property-tested against.
pub fn min_plus_deconv_general(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_wide_sense_increasing());
    debug_assert!(g.is_wide_sense_increasing());
    if let (Value::Finite(rf), Value::Finite(rg)) = (f.ultimate_slope(), g.ultimate_slope()) {
        if rf > rg {
            return infinite_curve();
        }
    }
    deconv_general_impl(f, g)
}

fn deconv_general_impl(f: &Curve, g: &Curve) -> Curve {
    // Tail pin: beyond this u both operands are in their final piece,
    // so h(u) = f(t+u) − g(u) is affine in u with non-positive slope.
    let u_tail = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    // Candidate abscissas.
    let mut ts: Vec<Rat> = vec![Rat::ZERO];
    for bf in f.breakpoints() {
        for bg in g.breakpoints() {
            let d = bf.x - bg.x;
            if d.is_positive() {
                ts.push(d);
            }
        }
    }
    ts.sort_unstable();
    ts.dedup();

    let mut bps: Vec<Breakpoint> = Vec::with_capacity(ts.len());
    for (k, &a) in ts.iter().enumerate() {
        let v = deconv_at(f, g, a);
        let b = ts.get(k + 1).copied();
        match strategy_lines_deconv(f, g, a, b, u_tail) {
            None => {
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::Infinity,
                    slope: Rat::ZERO,
                });
            }
            Some(lines) => {
                let env = upper_envelope(&lines, b.map(|b| b - a));
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::finite(env[0].value),
                    slope: env[0].slope,
                });
                for piece in &env[1..] {
                    bps.push(Breakpoint::cont(
                        a + piece.start,
                        Value::finite(piece.value),
                        piece.slope,
                    ));
                }
            }
        }
    }
    Curve::from_breakpoints_unchecked(bps)
}

/// Exact value of `(f ⊘ g)(t)`.
pub fn deconv_at(f: &Curve, g: &Curve, t: Rat) -> Value {
    debug_assert!(!t.is_negative());
    // Diverging tails.
    if let (Value::Finite(rf), Value::Finite(rg)) = (f.ultimate_slope(), g.ultimate_slope()) {
        if rf > rg {
            return Value::Infinity;
        }
    }
    let u_tail = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    let mut grid: Vec<Rat> = vec![Rat::ZERO, u_tail];
    for bg in g.breakpoints() {
        grid.push(bg.x);
    }
    for bf in f.breakpoints() {
        let u = bf.x - t;
        if !u.is_negative() {
            grid.push(u);
        }
    }
    grid.sort_unstable();
    grid.dedup();

    let mut best = Value::NegInfinity;
    for &u in &grid {
        let s = t + u;
        // Exact point (skip where g is infinite: no constraint there).
        if !g.eval(u).is_infinite() {
            best = best.max(f.eval(s) - g.eval(u));
        }
        // Limit u ↓: f((t+u)⁺) − g(u⁺).
        if !g.eval_right(u).is_infinite() {
            best = best.max(f.eval_right(s) - g.eval_right(u));
        }
        // Limit u ↑ (u > 0): f((t+u)⁻) − g(u⁻).
        if u.is_positive() && !g.eval_left(u).is_infinite() {
            best = best.max(f.eval_left(s) - g.eval_left(u));
        }
    }
    // A supremum over a non-empty candidate family is at least f(t)−g(0)
    // unless g(0)=inf; degenerate case: g ≡ inf ⇒ no constraint at all.
    if best == Value::NegInfinity {
        Value::Infinity
    } else {
        best
    }
}

/// Build the affine strategies governing `(f ⊘ g)` on the open interval
/// `(a, b)`. Returns `None` when the supremum is `+∞` there.
fn strategy_lines_deconv(
    f: &Curve,
    g: &Curve,
    a: Rat,
    b: Option<Rat>,
    u_tail: Rat,
) -> Option<Vec<Line>> {
    let (m1, m2) = match b {
        Some(b) => {
            let d = (b - a) / Rat::int(3);
            (a + d, a + d + d)
        }
        None => (a + Rat::ONE, a + Rat::int(2)),
    };
    let mut lines = Vec::new();
    let mut infinite = false;

    // Strategies pinned at a breakpoint of g: u ≈ y_j, value
    // f(t + y_j) − L with L the smallest one-sided value of g at y_j.
    for bg in g.breakpoints() {
        let mut l = bg.v.min(bg.v_right);
        if bg.x.is_positive() {
            l = l.min(g.eval_left(bg.x));
        }
        if l.is_infinite() {
            continue;
        }
        let lf = l.unwrap_finite();
        // If f is infinite at the interior samples, the sup diverges.
        if f.eval(m1 + bg.x).is_infinite() {
            infinite = true;
            break;
        }
        push_line(&mut lines, m1, m2, a, |m| {
            f.eval(m + bg.x) - Value::finite(lf)
        });
    }
    // Strategies pinned at a breakpoint of f: u = x_i − t, value
    // K − g(x_i − t) with K the largest one-sided value of f at x_i.
    if !infinite {
        for bf in f.breakpoints() {
            // Need x_i − t ≥ 0 on the whole interval, i.e. x_i ≥ b; for the
            // unbounded tail no f-breakpoint qualifies.
            let qualifies = match b {
                Some(b) => bf.x >= b,
                None => false,
            };
            if !qualifies {
                continue;
            }
            let mut k = bf.v.max(bf.v_right);
            if bf.x.is_positive() {
                k = k.max(f.eval_left(bf.x));
            }
            if k.is_infinite() {
                // f jumps to +inf at x_i while g is finite just below it:
                // check g at the matching u.
                if !g.eval(bf.x - m1).is_infinite() {
                    infinite = true;
                    break;
                }
                continue;
            }
            let kf = k.unwrap_finite();
            if g.eval(bf.x - m1).is_infinite() {
                continue;
            }
            push_line(&mut lines, m1, m2, a, |m| {
                Value::finite(kf) - g.eval(bf.x - m)
            });
        }
    }
    // Tail strategy: u = u_tail (both operands in their final piece; the
    // supremum over larger u is dominated because the tail slope of h is
    // rate(f) − rate(g) ≤ 0 after the upfront overload check).
    if !infinite && !g.eval(u_tail).is_infinite() {
        if f.eval(m1 + u_tail).is_infinite() {
            infinite = true;
        } else {
            let gu = g.eval(u_tail);
            push_line(&mut lines, m1, m2, a, |m| f.eval(m + u_tail) - gu);
        }
    }

    if infinite {
        None
    } else if lines.is_empty() {
        // g infinite everywhere it matters: unconstrained output.
        None
    } else {
        Some(lines)
    }
}

/// Left shift under min-plus semantics: `(f ⊘ δ_T)(t) = f(t + T)`.
fn shift_left(f: &Curve, t_shift: Rat) -> Curve {
    if t_shift.is_zero() {
        return f.clone();
    }
    if f.eval(t_shift).is_infinite() {
        // f is +∞ from T on (f increases), so the shift is +∞ everywhere.
        return infinite_curve();
    }
    let bps_in = f.breakpoints();
    let i0 = bps_in.partition_point(|bp| bp.x <= t_shift) - 1;
    let b0 = &bps_in[i0];
    let mut bps = Vec::with_capacity(bps_in.len() - i0);
    if b0.x == t_shift {
        bps.push(Breakpoint {
            x: Rat::ZERO,
            v: b0.v,
            v_right: b0.v_right,
            slope: b0.slope,
        });
    } else {
        // T is interior to b0's affine piece: continuous there.
        let v = f.eval(t_shift);
        bps.push(Breakpoint {
            x: Rat::ZERO,
            v,
            v_right: v,
            slope: b0.slope,
        });
    }
    for bp in &bps_in[i0 + 1..] {
        bps.push(Breakpoint {
            x: bp.x - t_shift,
            ..*bp
        });
    }
    Curve::from_breakpoints_unchecked(bps)
}

/// Detects curves that are exactly a rate-latency `RL(R, T)` (including
/// the pure rate `R·t` as `T = 0`), returning `(R, T)` — delegates to
/// [`Curve::as_rate_latency`].
fn as_rate_latency(c: &Curve) -> Option<(Rat, Rat)> {
    c.as_rate_latency()
}

/// Closed form for concave `f ⊘ RL(R, T)`, `O(n)`.
///
/// With `h(u) = f(t + u) − R·[u − T]⁺`, the supremum grows while
/// `f'(t + u) > R` and shrinks after, so it is pinned at the
/// slope-crossing point `s* = inf { s : f'(s) ≤ R }` (independent of
/// `t`; it exists because the overload check guarantees the ultimate
/// slope of `f` is at most `R`):
///
/// * for `t ≥ s* − T` the optimum sits at `u = T`: value `f(t + T)`;
/// * before that it sits at `t + u = s*`: the line
///   `f(s*) − R·(s* − T − t)` of slope `R`.
fn deconv_concave_rl(f: &Curve, r: Rat, t: Rat) -> Curve {
    let bps_in = f.breakpoints();
    // First breakpoint from which f's slope is ≤ R; concavity makes the
    // slopes non-increasing, so the predicate is monotone.
    let i_star = bps_in.partition_point(|bp| bp.slope > r);
    debug_assert!(i_star < bps_in.len(), "overload check admits slope <= R");
    let s_star = bps_in[i_star].x;

    let mut bps = Vec::with_capacity(bps_in.len() - i_star + 1);
    if s_star > t {
        // Leading line of slope R up to t0 = s* − T, then f(t + T).
        let t0 = s_star - t;
        let at_star = bps_in[i_star].v;
        let l0 = at_star - Value::finite(r * t0);
        bps.push(Breakpoint {
            x: Rat::ZERO,
            v: l0,
            v_right: l0,
            slope: r,
        });
        bps.push(Breakpoint {
            x: t0,
            v: at_star,
            v_right: at_star,
            slope: bps_in[i_star].slope,
        });
        for bp in &bps_in[i_star + 1..] {
            bps.push(Breakpoint { x: bp.x - t, ..*bp });
        }
        Curve::from_breakpoints_unchecked(bps)
    } else {
        // s* ≤ T: f(t + T) from the start; eval_right catches the
        // burst when T = 0.
        let i0 = bps_in.partition_point(|bp| bp.x <= t) - 1;
        let v0 = f.eval_right(t);
        bps.push(Breakpoint {
            x: Rat::ZERO,
            v: v0,
            v_right: v0,
            slope: bps_in[i0].slope,
        });
        for bp in &bps_in[i0 + 1..] {
            bps.push(Breakpoint { x: bp.x - t, ..*bp });
        }
        Curve::from_breakpoints_unchecked(bps)
    }
}

/// The curve that is `+∞` everywhere (diverged bound).
pub fn infinite_curve() -> Curve {
    Curve::from_breakpoints_unchecked(vec![Breakpoint {
        x: Rat::ZERO,
        v: Value::Infinity,
        v_right: Value::Infinity,
        slope: Rat::ZERO,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;
    use crate::ops::conv::min_plus_conv;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    /// Every public entry point must agree with the reference oracle.
    fn check_matches_general(f: &Curve, g: &Curve) -> Curve {
        let fast = min_plus_deconv(f, g);
        let general = min_plus_deconv_general(f, g);
        assert_eq!(fast, general, "fast path disagrees with oracle");
        fast
    }

    fn check_against_sampling(f: &Curve, g: &Curve, c: &Curve, t_max: i128, denom: i128) {
        let u_hi = 40;
        for num in 0..(t_max * denom) {
            let t = rat(num, denom);
            let exact = deconv_at(f, g, t);
            assert_eq!(c.eval(t), exact, "curve disagrees with deconv_at at {t:?}");
            // The sup dominates every sampled candidate.
            for k in 0..=(u_hi * 4) {
                let u = rat(k, 4);
                if g.eval(u).is_infinite() {
                    continue;
                }
                let cand = f.eval(t + u) - g.eval(u);
                assert!(exact >= cand, "sup below sample at t={t:?}, u={u:?}");
            }
        }
    }

    #[test]
    fn lb_deconv_rl_closed_form() {
        // Classic output bound: LB(r,b) ⊘ RL(R,T) = LB(r, b + rT) for
        // r ≤ R and t > 0. At t = 0 the exact deconvolution equals the
        // vertical deviation sup_u {α(u) − β(u)} = b + rT (the textbook
        // closed form quietly redefines the value at 0).
        let a = lb(2, 5);
        let b = rl(3, 4);
        let out = check_matches_general(&a, &b);
        assert_eq!(out.eval(Rat::ZERO), Value::from(13));
        let expect = lb(2, 5 + 2 * 4);
        for num in 1..40 {
            let t = rat(num, 3);
            assert_eq!(out.eval(t), expect.eval(t), "t = {t:?}");
        }
        check_against_sampling(&a, &b, &out, 8, 2);
    }

    #[test]
    fn deconv_overload_diverges() {
        // Arrival rate exceeds service rate: R_α > R_β ⇒ infinite bound
        // (the paper's §3 overload discussion).
        let a = lb(5, 1);
        let b = rl(3, 1);
        let out = check_matches_general(&a, &b);
        assert_eq!(out.eval(Rat::ZERO), Value::Infinity);
        assert_eq!(out.eval(Rat::int(10)), Value::Infinity);
    }

    #[test]
    fn deconv_equal_rates_finite() {
        // R_α = R_β: finite bound with the full latency burst.
        let a = lb(3, 2);
        let b = rl(3, 4);
        let out = check_matches_general(&a, &b);
        assert_eq!(out.eval(Rat::ZERO), Value::from(14));
        let expect = lb(3, 2 + 3 * 4);
        for num in 1..30 {
            let t = rat(num, 2);
            assert_eq!(out.eval(t), expect.eval(t), "t = {t:?}");
        }
        check_against_sampling(&a, &b, &out, 8, 2);
    }

    #[test]
    fn deconv_by_delta_shifts_left() {
        // f ⊘ δ_T = f(t + T).
        let f = rl(2, 3);
        let out = check_matches_general(&f, &shapes::delta(Rat::int(1)));
        assert_eq!(out, rl(2, 2));
    }

    #[test]
    fn delta_deconv_delta() {
        // δ_2 ⊘ δ_1 = δ_1.
        let out = check_matches_general(&shapes::delta(Rat::int(2)), &shapes::delta(Rat::ONE));
        assert_eq!(out, shapes::delta(Rat::ONE));
    }

    #[test]
    fn deconv_self_is_subadditive_envelope() {
        // f ⊘ f for LB is LB itself (already subadditive).
        let a = lb(2, 5);
        let out = check_matches_general(&a, &a);
        assert_eq!(out, a);
    }

    #[test]
    fn deconv_concave_piecewise() {
        let a = lb(4, 1).min(&lb(2, 9)); // dual token bucket
        let b = rl(5, 2);
        let out = check_matches_general(&a, &b);
        assert!(out.is_wide_sense_increasing());
        check_against_sampling(&a, &b, &out, 10, 2);
    }

    #[test]
    fn deconv_staircase_arrival() {
        let s = shapes::truncated_staircase(Rat::int(2), Rat::ONE, 3);
        let b = rl(4, 1);
        let out = check_matches_general(&s, &b);
        assert!(out.is_wide_sense_increasing());
        check_against_sampling(&s, &b, &out, 8, 2);
    }

    #[test]
    fn output_bound_composition_property() {
        // (α ⊘ β1) ⊘ β2 == α ⊘ (β1 ⊗ β2) for rate-latency servers.
        let a = lb(2, 5);
        let b1 = rl(4, 1);
        let b2 = rl(3, 2);
        let lhs = min_plus_deconv(&min_plus_deconv(&a, &b1), &b2);
        let rhs = min_plus_deconv(&a, &min_plus_conv(&b1, &b2));
        assert_eq!(lhs, rhs);
    }
}

//! `blastn` — a small command-line BLASTN built from the workload
//! kernels: the actual application whose accelerated deployment the
//! paper models. Searches every query record against every database
//! record, both strands, with host-side gapped extension on the
//! survivors.
//!
//! ```text
//! Usage: blastn <query.fa> <db.fa> [--threshold <score>] [--no-gapped]
//! ```
//!
//! With no arguments, runs a self-demo on generated sequences.

use std::process::ExitCode;

use nc_workloads::blast::{
    blast_search_both_strands, dedup_by_diagonal, gapped_extension, GappedParams, Strand,
    UngappedParams,
};
use nc_workloads::fasta::{fa2bit, parse_fasta_multi, random_dna, reverse_complement, to_fasta};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold: i32 = 16;
    let mut gapped = true;
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(threshold);
                i += 2;
            }
            "--no-gapped" => {
                gapped = false;
                i += 1;
            }
            _ => {
                paths.push(&args[i]);
                i += 1;
            }
        }
    }

    let (query_doc, db_doc) = match paths.as_slice() {
        [] => {
            println!("(no inputs; running self-demo on generated sequences)\n");
            demo_inputs()
        }
        [q, d] => {
            let read = |p: &str| {
                std::fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("cannot read {p}: {e}");
                    std::process::exit(1);
                })
            };
            (read(q), read(d))
        }
        _ => {
            eprintln!("usage: blastn <query.fa> <db.fa> [--threshold <score>] [--no-gapped]");
            return ExitCode::FAILURE;
        }
    };

    let queries = parse_fasta_multi(&query_doc);
    let dbs = parse_fasta_multi(&db_doc);
    if queries.is_empty() || dbs.is_empty() {
        eprintln!("no FASTA records found");
        return ExitCode::FAILURE;
    }

    let params = UngappedParams {
        threshold,
        ..Default::default()
    };
    println!(
        "{:<12} {:<12} {:>6} {:>9} {:>9} {:>7} {:>8}",
        "query", "subject", "strand", "q_pos", "s_pos", "score", "gapped"
    );
    let mut total = 0usize;
    for (qname, qseq) in &queries {
        if qseq.len() < 8 {
            eprintln!("skipping query '{qname}' (shorter than a seed)");
            continue;
        }
        for (dname, dseq) in &dbs {
            let (hits, _) = blast_search_both_strands(qseq, dseq, &params);
            let hits = dedup_by_diagonal(&hits);
            let dbp = fa2bit(dseq);
            for h in &hits {
                let (strand, qp_packed, qlen) = match h.strand {
                    Strand::Plus => ("+", fa2bit(qseq), qseq.len()),
                    Strand::Minus => {
                        let rc = reverse_complement(qseq);
                        ("-", fa2bit(&rc), rc.len())
                    }
                };
                let gscore = if gapped {
                    gapped_extension(
                        &dbp,
                        dseq.len(),
                        &qp_packed,
                        qlen,
                        &[h.alignment],
                        &GappedParams::default(),
                    )[0]
                    .score
                } else {
                    h.alignment.score
                };
                println!(
                    "{:<12} {:<12} {:>6} {:>9} {:>9} {:>7} {:>8}",
                    truncate(qname, 12),
                    truncate(dname, 12),
                    strand,
                    h.alignment.seed.q,
                    h.alignment.seed.p,
                    h.alignment.score,
                    gscore,
                );
                total += 1;
            }
        }
    }
    println!("\n{total} alignment(s)");
    ExitCode::SUCCESS
}

fn truncate(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

/// Generate a query with homology planted on both strands of the db.
fn demo_inputs() -> (String, String) {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let region = random_dna(100, &mut rng);
    let mut query = random_dna(300, &mut rng);
    query[100..200].copy_from_slice(&region);
    let mut db = random_dna(4096, &mut rng);
    db[1024..1124].copy_from_slice(&region);
    let rc = reverse_complement(&region);
    db[3072..3172].copy_from_slice(&rc);
    (to_fasta("demo_query", &query), to_fasta("demo_db", &db))
}

//! The discrete-event simulation kernel.
//!
//! Functionally equivalent to the SimPy core the paper uses [29]: a
//! time-ordered event calendar with deterministic FIFO tie-breaking,
//! driven to completion or to a horizon. Events are closures over the
//! user's world state `S`; higher-level process abstractions (the
//! streaming pipeline nodes of `nc-streamsim`) are built on top.
//!
//! Determinism: two events at the same timestamp fire in scheduling
//! order (a strictly monotone sequence number breaks ties), so a run
//! with a fixed RNG seed is exactly reproducible.
//!
//! ## Allocation behavior
//!
//! Scheduling is allocation-free on the hot path: an [`Event`] stores
//! its closure inline in the calendar entry when it fits in
//! [`INLINE_WORDS`] machine words (every closure the streaming
//! simulation schedules does — fn pointers and a captured index), and
//! falls back to a single box only for larger captures. A calendar
//! entry is five words total (time, sequence number, vtable pointer,
//! payload), keeping binary-heap sifts cheap. For repeated
//! replications over the same state type (Monte-Carlo), a [`SimPool`]
//! recycles the calendar's backing storage so steady-state replication
//! does not touch the allocator at all.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::mem::{align_of, size_of, MaybeUninit};

use crate::time::{Span, Time};

/// Words of inline closure storage in a calendar entry.
pub const INLINE_WORDS: usize = 2;

type Inline = [MaybeUninit<usize>; INLINE_WORDS];

/// The two type-erased operations on a stored payload. One static
/// table exists per `(S, F)` instantiation (via inline-const
/// promotion), so an [`Event`] carries a single pointer.
struct EventVTable<S: 'static> {
    /// Consumes the payload in `data` and runs it.
    call: unsafe fn(&mut Inline, &mut Sim<S>),
    /// Drops the payload without running it (event discarded).
    drop_payload: unsafe fn(&mut Inline),
}

/// A scheduled action: a type-erased `FnOnce(&mut Sim<S>)`.
///
/// Closures up to [`INLINE_WORDS`] words with word alignment are stored
/// inline (no allocation); larger ones cost one box. The whole event is
/// three words — vtable pointer plus payload — so calendar entries stay
/// small enough that heap sifts are cheap. Built implicitly by
/// [`Sim::schedule_at`]/[`Sim::schedule_in`], or explicitly with
/// [`Event::new`] to park an action outside the calendar (see
/// [`Resource`](crate::Resource)).
pub struct Event<S: 'static> {
    /// `Some` while `data` holds a payload: the pointer niche doubles
    /// as the live flag.
    vtable: Option<&'static EventVTable<S>>,
    data: Inline,
    /// The erased closure need not be `Send`/`Sync`, so neither is the
    /// event (mirroring `Box<dyn FnOnce(..)>`).
    _not_send: PhantomData<*mut ()>,
}

impl<S: 'static> Event<S> {
    /// Wrap a closure, storing it inline when it fits.
    pub fn new<F: FnOnce(&mut Sim<S>) + 'static>(f: F) -> Event<S> {
        let mut data: Inline = [MaybeUninit::uninit(); INLINE_WORDS];
        if size_of::<F>() <= size_of::<Inline>() && align_of::<F>() <= align_of::<Inline>() {
            // SAFETY: `data` is large and aligned enough for `F` (just
            // checked); the slot is uninitialized and the `Some` vtable
            // marks it as holding exactly one `F` until
            // `call`/`drop_payload` reads it back out.
            unsafe { data.as_mut_ptr().cast::<F>().write(f) };
            Event {
                vtable: Some(
                    const {
                        &EventVTable {
                            call: call_inline::<S, F>,
                            drop_payload: drop_inline::<F>,
                        }
                    },
                ),
                data,
                _not_send: PhantomData,
            }
        } else {
            // SAFETY: a thin raw pointer always fits the first word.
            unsafe {
                data.as_mut_ptr()
                    .cast::<*mut F>()
                    .write(Box::into_raw(Box::new(f)))
            };
            Event {
                vtable: Some(
                    const {
                        &EventVTable {
                            call: call_boxed::<S, F>,
                            drop_payload: drop_boxed::<F>,
                        }
                    },
                ),
                data,
                _not_send: PhantomData,
            }
        }
    }

    /// Run the wrapped closure.
    fn run(mut self, sim: &mut Sim<S>) {
        let vt = self.vtable.take();
        debug_assert!(vt.is_some());
        // SAFETY: the vtable was `Some`, so `data` holds the payload
        // `call` expects; clearing it first keeps `Drop` from touching
        // the now-consumed slot (including during an unwind out of
        // `call`).
        if let Some(vt) = vt {
            unsafe { (vt.call)(&mut self.data, sim) };
        }
    }
}

impl<S: 'static> Drop for Event<S> {
    fn drop(&mut self) {
        if let Some(vt) = self.vtable.take() {
            // SAFETY: the payload was written in `new` and never
            // consumed (the vtable was still `Some`).
            unsafe { (vt.drop_payload)(&mut self.data) };
        }
    }
}

unsafe fn call_inline<S, F: FnOnce(&mut Sim<S>)>(data: &mut Inline, sim: &mut Sim<S>) {
    // SAFETY (all four helpers): the caller guarantees `data` holds the
    // payload written by `Event::new` for this exact `F`, exactly once.
    let f = unsafe { data.as_mut_ptr().cast::<F>().read() };
    f(sim);
}

unsafe fn drop_inline<F>(data: &mut Inline) {
    unsafe { std::ptr::drop_in_place(data.as_mut_ptr().cast::<F>()) };
}

unsafe fn call_boxed<S, F: FnOnce(&mut Sim<S>)>(data: &mut Inline, sim: &mut Sim<S>) {
    let f = unsafe { Box::from_raw(data.as_mut_ptr().cast::<*mut F>().read()) };
    (*f)(sim);
}

unsafe fn drop_boxed<F>(data: &mut Inline) {
    drop(unsafe { Box::from_raw(data.as_mut_ptr().cast::<*mut F>().read()) });
}

struct Entry<S: 'static> {
    at: Time,
    seq: u64,
    run: Event<S>,
}

impl<S> Entry<S> {
    /// Scheduling key: earliest time first, FIFO within a timestamp.
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

impl<S: 'static> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S: 'static> Eq for Entry<S> {}
impl<S: 'static> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S: 'static> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Pending-set size beyond which the calendar spills into a heap.
const SPILL_AT: usize = 64;

/// The pending-event set, adaptive to its size.
///
/// A streaming simulation keeps only a handful of events pending (one
/// finish per busy node plus the next source emission), and there an
/// unsorted vector with scan-for-min beats a binary heap: pushes are
/// plain appends and pops move nothing. Past [`SPILL_AT`] pending
/// events the calendar spills into a binary heap (burst workloads that
/// pre-schedule long schedules), returning to scan mode once it
/// drains. The pop order is identical in both modes because the
/// `(time, seq)` key is unique.
enum Calendar<S: 'static> {
    Scan(Vec<Reverse<Entry<S>>>),
    Heap(BinaryHeap<Reverse<Entry<S>>>),
}

impl<S> Calendar<S> {
    fn new() -> Calendar<S> {
        Calendar::Scan(Vec::new())
    }

    fn len(&self) -> usize {
        match self {
            Calendar::Scan(v) => v.len(),
            Calendar::Heap(h) => h.len(),
        }
    }

    /// Index of the earliest entry (the key is unique: `seq` is
    /// strictly monotone).
    fn scan_min(v: &[Reverse<Entry<S>>]) -> Option<usize> {
        let mut it = v.iter().enumerate();
        let (mut at, first) = it.next()?;
        let mut best = first.0.key();
        for (i, e) in it {
            let k = e.0.key();
            if k < best {
                best = k;
                at = i;
            }
        }
        Some(at)
    }

    fn push(&mut self, e: Entry<S>) {
        match self {
            Calendar::Scan(v) => {
                v.push(Reverse(e));
                if v.len() > SPILL_AT {
                    *self = Calendar::Heap(BinaryHeap::from(std::mem::take(v)));
                }
            }
            Calendar::Heap(h) => h.push(Reverse(e)),
        }
    }

    fn pop(&mut self) -> Option<Entry<S>> {
        match self {
            Calendar::Scan(v) => Self::scan_min(v).map(|i| v.swap_remove(i).0),
            Calendar::Heap(h) => {
                let e = h.pop()?.0;
                if h.is_empty() {
                    // Drained: reclaim scan mode (keeps the allocation).
                    *self = Calendar::Scan(std::mem::take(h).into_vec());
                }
                Some(e)
            }
        }
    }

    fn peek(&self) -> Option<Time> {
        match self {
            Calendar::Scan(v) => Self::scan_min(v).map(|i| v[i].0.at),
            Calendar::Heap(h) => h.peek().map(|Reverse(e)| e.at),
        }
    }

    fn clear(&mut self) {
        if let Calendar::Heap(h) = self {
            *self = Calendar::Scan(std::mem::take(h).into_vec());
        }
        match self {
            Calendar::Scan(v) => v.clear(),
            Calendar::Heap(_) => unreachable!(),
        }
    }
}

/// A discrete-event simulation over world state `S`.
pub struct Sim<S: 'static> {
    now: Time,
    seq: u64,
    processed: u64,
    calendar: Calendar<S>,
    /// The user's world state (queues, node status, statistics…).
    pub state: S,
}

impl<S: 'static> Sim<S> {
    /// Create a simulation at time zero.
    pub fn new(state: S) -> Sim<S> {
        Sim {
            now: Time::ZERO,
            seq: 0,
            processed: 0,
            calendar: Calendar::new(),
            state,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.calendar.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: Time, event: impl FnOnce(&mut Sim<S>) + 'static) {
        self.schedule_event_at(at, Event::new(event));
    }

    /// Schedule `event` after `delay`.
    pub fn schedule_in(&mut self, delay: Span, event: impl FnOnce(&mut Sim<S>) + 'static) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Schedule an already-wrapped [`Event`] at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_event_at(&mut self, at: Time, event: Event<S>) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(Entry {
            at,
            seq,
            run: event,
        });
    }

    /// Schedule an already-wrapped [`Event`] after `delay`.
    pub fn schedule_event_in(&mut self, delay: Span, event: Event<S>) {
        let at = self.now + delay;
        self.schedule_event_at(at, event);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_next(&self) -> Option<Time> {
        self.calendar.peek()
    }

    /// Execute the single next event. Returns `false` when the
    /// calendar is empty.
    pub fn step(&mut self) -> bool {
        match self.calendar.pop() {
            None => false,
            Some(e) => {
                debug_assert!(e.at >= self.now);
                self.now = e.at;
                self.processed += 1;
                e.run.run(self);
                true
            }
        }
    }

    /// Run until the calendar is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run every event scheduled at or before `horizon`, then set the
    /// clock to `horizon`. Later events stay pending.
    pub fn run_until(&mut self, horizon: Time) {
        while let Some(next) = self.peek_next() {
            if next > horizon {
                break;
            }
            self.step();
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }
}

/// Recycled calendar storage for repeated simulations over one state
/// type.
///
/// Monte-Carlo drivers [`take`](SimPool::take) a fresh simulation per
/// replication and [`put`](SimPool::put) it back when done; after the
/// first replication has grown the calendar to the workload's high-water
/// mark, subsequent replications run without allocating.
pub struct SimPool<S: 'static> {
    calendars: Vec<Calendar<S>>,
}

impl<S: 'static> Default for SimPool<S> {
    fn default() -> Self {
        SimPool::new()
    }
}

impl<S: 'static> SimPool<S> {
    /// An empty pool.
    pub fn new() -> SimPool<S> {
        SimPool {
            calendars: Vec::new(),
        }
    }

    /// Calendars currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.calendars.len()
    }

    /// A simulation at time zero over `state`, backed by pooled
    /// calendar storage (or fresh storage when the pool is empty).
    pub fn take(&mut self, state: S) -> Sim<S> {
        let calendar = self.calendars.pop().unwrap_or_else(Calendar::new);
        debug_assert!(calendar.len() == 0);
        Sim {
            now: Time::ZERO,
            seq: 0,
            processed: 0,
            calendar,
            state,
        }
    }

    /// Recycle a finished simulation's storage and return its state.
    /// Pending events are dropped without running.
    pub fn put(&mut self, sim: Sim<S>) -> S {
        let Sim {
            mut calendar,
            state,
            ..
        } = sim;
        calendar.clear();
        self.calendars.push(calendar);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut sim = Sim::new(());
        for (t, id) in [(3.0, 3u32), (1.0, 1), (2.0, 2)] {
            let log = log.clone();
            sim.schedule_at(Time::secs(t), move |_| log.borrow_mut().push(id));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut sim = Sim::new(());
        for id in 0..10u32 {
            let log = log.clone();
            sim.schedule_at(Time::secs(5.0), move |_| log.borrow_mut().push(id));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        // A ping-pong chain: each event schedules the next.
        let mut sim = Sim::new(0u32);
        fn chain(sim: &mut Sim<u32>) {
            sim.state += 1;
            if sim.state < 5 {
                sim.schedule_in(Span::secs(1.0), chain);
            }
        }
        sim.schedule_at(Time::ZERO, chain);
        sim.run();
        assert_eq!(sim.state, 5);
        assert_eq!(sim.now(), Time::secs(4.0));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(Vec::<f64>::new());
        for t in [1.0, 2.0, 3.0, 4.0] {
            sim.schedule_at(Time::secs(t), move |s: &mut Sim<Vec<f64>>| {
                let now = s.now().as_secs();
                s.state.push(now);
            });
        }
        sim.run_until(Time::secs(2.5));
        assert_eq!(sim.state, vec![1.0, 2.0]);
        assert_eq!(sim.now(), Time::secs(2.5));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.state, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_at(Time::secs(1.0), |s| {
            s.schedule_at(Time::secs(0.5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn peek_next_reports_earliest() {
        let mut sim = Sim::new(());
        assert_eq!(sim.peek_next(), None);
        sim.schedule_at(Time::secs(7.0), |_| {});
        sim.schedule_at(Time::secs(2.0), |_| {});
        assert_eq!(sim.peek_next(), Some(Time::secs(2.0)));
    }

    #[test]
    fn oversized_closures_fall_back_to_boxing() {
        // Captures larger than the inline slot must still run correctly
        // (and drop correctly when discarded — see below).
        let big = [7u64; 16];
        let mut sim = Sim::new(0u64);
        sim.schedule_at(Time::secs(1.0), move |s: &mut Sim<u64>| {
            s.state = big.iter().sum();
        });
        sim.run();
        assert_eq!(sim.state, 7 * 16);
    }

    #[test]
    fn discarded_events_drop_their_payload() {
        // Both inline and boxed payloads own an Rc; tearing down a sim
        // with pending events must release them (no leak, no double
        // drop). Miri-friendly check via strong counts.
        let token: Rc<()> = Rc::new(());
        {
            let mut sim = Sim::new(());
            let t1 = token.clone();
            let t2 = token.clone();
            let big = [0u64; 16];
            sim.schedule_at(Time::secs(1.0), move |_| drop(t1));
            sim.schedule_at(Time::secs(2.0), move |_| {
                let _ = big;
                drop(t2);
            });
            assert_eq!(Rc::strong_count(&token), 3);
            // Dropped without running.
        }
        assert_eq!(Rc::strong_count(&token), 1);
    }

    #[test]
    fn pool_recycles_calendar_storage() {
        let mut pool: SimPool<u32> = SimPool::new();
        let mut sim = pool.take(0);
        fn chain(sim: &mut Sim<u32>) {
            sim.state += 1;
            if sim.state < 100 {
                sim.schedule_in(Span::secs(1.0), chain);
            }
        }
        sim.schedule_at(Time::ZERO, chain);
        sim.run();
        assert_eq!(pool.put(sim), 100);
        assert_eq!(pool.idle(), 1);

        // Second replication starts from a clean clock and state.
        let mut sim = pool.take(0);
        assert_eq!(sim.now(), Time::ZERO);
        assert_eq!(sim.events_pending(), 0);
        assert_eq!(sim.events_processed(), 0);
        sim.schedule_at(Time::ZERO, chain);
        sim.run();
        assert_eq!(sim.state, 100);
        pool.put(sim);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_discards_pending_events_on_put() {
        let fired: Rc<RefCell<u32>> = Rc::default();
        let mut pool: SimPool<()> = SimPool::new();
        let mut sim = pool.take(());
        let f = fired.clone();
        sim.schedule_at(Time::secs(1.0), move |_| *f.borrow_mut() += 1);
        pool.put(sim);
        // The pending event was dropped, not run.
        assert_eq!(*fired.borrow(), 0);
        let mut sim = pool.take(());
        sim.run();
        assert_eq!(*fired.borrow(), 0);
        pool.put(sim);
    }
}

//! Min-plus convolution `⊗`.
//!
//! `(f ⊗ g)(t) = inf_{0 ≤ s ≤ t} { f(s) + g(t − s) }` is the composition
//! operator of network calculus: the service curve of two systems in
//! tandem is the convolution of their service curves (§4.2 of the
//! paper, "these nodes can be concatenated together to find the overall
//! service curve of the full system").
//!
//! # Algorithm
//!
//! Closed forms cover the common cases: a pure delay `δ_T` shifts the
//! other operand, and for concave operands vanishing at `0`,
//! `f ⊗ g = min(f, g)`.
//!
//! In general, candidate breakpoints of the result lie in the Minkowski
//! sum `{x_i + y_j}` of the operands' breakpoints, *but the result is
//! not affine between candidates*: on each open interval the
//! convolution equals the pointwise minimum of finitely many affine
//! "strategies" (the infimum pinned at a breakpoint of `f`, or at
//! `t − y_j` for a breakpoint of `g`), whose crossings create further
//! kinks. We therefore take the exact [lower envelope](super::envelope)
//! of the strategy lines on every interval. All arithmetic is rational,
//! so the result is exact.

use crate::curve::pwl::{Breakpoint, Curve};
use crate::num::{Rat, Value};

use super::envelope::{lower_envelope, Line};

/// Exact min-plus convolution of two wide-sense increasing curves.
///
/// # Panics
/// Panics (in debug builds) if either operand is not wide-sense
/// increasing.
pub fn min_plus_conv(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_wide_sense_increasing(), "conv operand must increase");
    debug_assert!(g.is_wide_sense_increasing(), "conv operand must increase");

    // Fast path: pure delay δ_T shifts the other operand.
    if let Some(t) = as_pure_delay(f) {
        return g.shift_right(t);
    }
    if let Some(t) = as_pure_delay(g) {
        return f.shift_right(t);
    }
    // Fast path: for concave curves with f(0) = g(0) = 0,
    // f ⊗ g = min(f, g)  (Le Boudec & Thiran, Thm 3.1.6).
    if f.starts_at_zero() && g.starts_at_zero() && is_concave(f) && is_concave(g) {
        return f.min(g);
    }

    // General case: Minkowski-sum candidate abscissas.
    let mut ts: Vec<Rat> = Vec::with_capacity(f.len() * g.len());
    for bf in f.breakpoints() {
        for bg in g.breakpoints() {
            ts.push(bf.x + bg.x);
        }
    }
    ts.sort_unstable();
    ts.dedup();

    let mut bps: Vec<Breakpoint> = Vec::with_capacity(ts.len());
    for (k, &a) in ts.iter().enumerate() {
        let v = conv_at(f, g, a);
        let b = ts.get(k + 1).copied();
        let lines = strategy_lines_conv(f, g, a, b);
        match lines {
            None => {
                // No finite strategy: the convolution is +inf on (a, b).
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::Infinity,
                    slope: Rat::ZERO,
                });
            }
            Some(lines) => {
                let env = lower_envelope(&lines, b.map(|b| b - a));
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::finite(env[0].value),
                    slope: env[0].slope,
                });
                for piece in &env[1..] {
                    bps.push(Breakpoint::cont(
                        a + piece.start,
                        Value::finite(piece.value),
                        piece.slope,
                    ));
                }
            }
        }
    }
    Curve::from_breakpoints_unchecked(bps)
}

/// Exact value of `(f ⊗ g)(t)`.
///
/// The infimum of the piecewise-affine map `s ↦ f(s) + g(t−s)` over
/// `[0, t]` is reached at a breakpoint of the map or as a one-sided
/// limit at one; all such candidates lie on the grid
/// `{x_i} ∪ {t − y_j}`.
pub fn conv_at(f: &Curve, g: &Curve, t: Rat) -> Value {
    debug_assert!(!t.is_negative());
    let mut grid: Vec<Rat> = Vec::new();
    grid.push(Rat::ZERO);
    grid.push(t);
    for bf in f.breakpoints() {
        if bf.x <= t {
            grid.push(bf.x);
        }
    }
    for bg in g.breakpoints() {
        let s = t - bg.x;
        if !s.is_negative() {
            grid.push(s);
        }
    }
    grid.sort_unstable();
    grid.dedup();

    let mut best = Value::Infinity;
    for &s in &grid {
        let u = t - s;
        // Value at the grid point itself.
        best = best.min(f.eval(s) + g.eval(u));
        // Limit approaching from the right (s ↓): f(s⁺) + g((t−s)⁻).
        if s < t {
            best = best.min(f.eval_right(s) + g.eval_left(u));
        }
        // Limit approaching from the left (s ↑): f(s⁻) + g((t−s)⁺).
        if s.is_positive() {
            best = best.min(f.eval_left(s) + g.eval_right(u));
        }
    }
    best
}

/// Build the affine strategies governing `(f ⊗ g)` on the open interval
/// `(a, b)` (where `(a, b)` contains no Minkowski-sum candidate).
///
/// Returns `None` when every strategy is infinite (the convolution is
/// `+∞` on the interval).
fn strategy_lines_conv(f: &Curve, g: &Curve, a: Rat, b: Option<Rat>) -> Option<Vec<Line>> {
    // Two interior sample abscissas used to express each strategy as a
    // line in local coordinates u = t − a.
    let (m1, m2) = match b {
        Some(b) => {
            let d = (b - a) / Rat::int(3);
            (a + d, a + d + d)
        }
        None => (a + Rat::ONE, a + Rat::int(2)),
    };
    let mut lines = Vec::new();

    // Strategies pinned at a breakpoint of f: s ≈ x_i, value
    // K + g(t − x_i) with K the cheapest one-sided value of f at x_i.
    for bf in f.breakpoints() {
        if bf.x > a {
            continue;
        }
        let mut k = bf.v;
        if bf.x.is_positive() {
            k = k.min(f.eval_left(bf.x));
        }
        k = k.min(bf.v_right);
        push_line(&mut lines, m1, m2, a, |m| k + g.eval(m - bf.x));
    }
    // Strategies pinned at a breakpoint of g: s = t − y_j, value
    // f(t − y_j) + L with L the cheapest one-sided value of g at y_j.
    for bg in g.breakpoints() {
        if bg.x > a {
            continue;
        }
        let mut l = bg.v;
        if bg.x.is_positive() {
            l = l.min(g.eval_left(bg.x));
        }
        l = l.min(bg.v_right);
        push_line(&mut lines, m1, m2, a, |m| f.eval(m - bg.x) + l);
    }
    if lines.is_empty() {
        None
    } else {
        Some(lines)
    }
}

/// Evaluate `strategy` at the two interior samples; if finite at both,
/// append the interpolating line (in local coordinates relative to `a`).
pub(super) fn push_line(
    lines: &mut Vec<Line>,
    m1: Rat,
    m2: Rat,
    a: Rat,
    strategy: impl Fn(Rat) -> Value,
) {
    let (w1, w2) = (strategy(m1), strategy(m2));
    if let (Value::Finite(w1), Value::Finite(w2)) = (w1, w2) {
        let slope = (w2 - w1) / (m2 - m1);
        let v0 = w1 - slope * (m1 - a);
        lines.push(Line { v0, slope });
    }
}

/// Detects curves that are exactly a pure delay `δ_T`.
pub(crate) fn as_pure_delay(c: &Curve) -> Option<Rat> {
    let bps = c.breakpoints();
    match bps {
        [only] => {
            if only.v == Value::ZERO && only.v_right == Value::Infinity {
                Some(Rat::ZERO)
            } else {
                None
            }
        }
        [first, last] => {
            let zero_plateau = first.v == Value::ZERO
                && first.v_right == Value::ZERO
                && first.slope.is_zero();
            if zero_plateau && last.v == Value::ZERO && last.v_right == Value::Infinity {
                Some(last.x)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// `true` iff the curve is concave on `(0, ∞)` (an initial burst at
/// `t = 0` is allowed — the leaky bucket counts as concave).
pub(crate) fn is_concave(c: &Curve) -> bool {
    if !c.is_finite_everywhere() {
        return false;
    }
    let bps = c.breakpoints();
    let mut prev_slope: Option<Rat> = None;
    for (i, bp) in bps.iter().enumerate() {
        // Jumps beyond t = 0 break concavity.
        if i > 0 && (bp.v != bp.v_right || c.eval_left(bp.x) != bp.v) {
            return false;
        }
        if let Some(p) = prev_slope {
            if bp.slope > p {
                return false;
            }
        }
        prev_slope = Some(bp.slope);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    /// Brute-force numeric check helper: exact value must not exceed
    /// any sampled inner value, and must be attained up to grid effects.
    fn check_against_sampling(f: &Curve, g: &Curve, c: &Curve, t_max: i128, denom: i128) {
        for num in 0..(t_max * denom) {
            let t = rat(num, denom);
            let exact = conv_at(f, g, t);
            assert_eq!(c.eval(t), exact, "curve disagrees with conv_at at {t:?}");
            let mut brute = Value::Infinity;
            for k in 0..=96 {
                let s = t * rat(k, 96);
                brute = brute.min(f.eval(s) + g.eval(t - s));
            }
            assert!(exact <= brute, "inf exceeded sample at t={t:?}");
        }
    }

    #[test]
    fn delta_is_identity() {
        let f = lb(2, 5);
        let c = min_plus_conv(&f, &shapes::delta(Rat::ZERO));
        assert_eq!(c, f);
        let c = min_plus_conv(&shapes::delta(Rat::ZERO), &f);
        assert_eq!(c, f);
    }

    #[test]
    fn delta_shifts() {
        let f = rl(3, 1);
        let c = min_plus_conv(&f, &shapes::delta(Rat::int(2)));
        assert_eq!(c, rl(3, 3));
    }

    #[test]
    fn rate_latency_composition() {
        // RL(R1,T1) ⊗ RL(R2,T2) = RL(min(R1,R2), T1+T2).
        let c = min_plus_conv(&rl(3, 2), &rl(5, 1));
        assert_eq!(c, rl(3, 3));
        let c = min_plus_conv(&rl(5, 1), &rl(3, 2));
        assert_eq!(c, rl(3, 3));
    }

    #[test]
    fn concave_conv_is_min() {
        let a = lb(2, 5);
        let b = lb(1, 9);
        let c = min_plus_conv(&a, &b);
        assert_eq!(c, a.min(&b));
    }

    #[test]
    fn lb_conv_rl_exact_shape() {
        // α ⊗ β for α = LB(2, 5), β = RL(3, 4):
        // zero until 4, then min(3(t−4), 5 + 2(t−4)) with a kink at t=9
        // where the strategies cross — a breakpoint *outside* the
        // Minkowski sum of the operand breakpoints.
        let a = lb(2, 5);
        let b = rl(3, 4);
        let c = min_plus_conv(&a, &b);
        assert_eq!(c.eval(Rat::int(2)), Value::ZERO);
        assert_eq!(c.eval(Rat::int(4)), Value::ZERO);
        assert_eq!(c.eval_right(Rat::int(4)), Value::ZERO);
        assert_eq!(c.eval(Rat::int(6)), Value::from(6));
        assert_eq!(c.eval(Rat::int(9)), Value::from(15));
        assert_eq!(c.eval(Rat::int(14)), Value::from(25));
        assert!(c.breakpoints().iter().any(|bp| bp.x == Rat::int(9)));
        assert!(c.is_wide_sense_increasing());
        check_against_sampling(&a, &b, &c, 12, 4);
    }

    #[test]
    fn conv_commutative_on_mixed_curves() {
        let a = lb(2, 5).min(&shapes::constant_rate(Rat::int(7)));
        let b = rl(3, 4).add(&rl(1, 1));
        let ab = min_plus_conv(&a, &b);
        let ba = min_plus_conv(&b, &a);
        assert_eq!(ab, ba);
        check_against_sampling(&a, &b, &ab, 10, 3);
    }

    #[test]
    fn conv_associative() {
        let a = lb(2, 5);
        let b = rl(3, 4);
        let c = rl(6, 1);
        let l = min_plus_conv(&min_plus_conv(&a, &b), &c);
        let r = min_plus_conv(&a, &min_plus_conv(&b, &c));
        assert_eq!(l, r);
    }

    #[test]
    fn staircase_conv_rate_latency() {
        let s = shapes::truncated_staircase(Rat::int(4), Rat::int(2), 4);
        let b = rl(2, 1);
        let c = min_plus_conv(&s, &b);
        assert!(c.is_wide_sense_increasing());
        check_against_sampling(&s, &b, &c, 12, 2);
    }

    #[test]
    fn conv_with_positive_at_zero() {
        // f(0) > 0 shifts the whole result up.
        let f = lb(1, 2).shift_up(Rat::int(3));
        let g = rl(2, 1);
        let c = min_plus_conv(&f, &g);
        assert_eq!(c.eval(Rat::ZERO), Value::from(3));
        check_against_sampling(&f, &g, &c, 8, 2);
    }

    #[test]
    fn conv_delayed_operands() {
        // Two delta-containing curves: δ_1 min LB vs δ_2 min RL shapes.
        let f = shapes::delta(Rat::int(1)).min(&lb(3, 7));
        let g = shapes::delta(Rat::int(2)).min(&rl(5, 1));
        let c = min_plus_conv(&f, &g);
        assert!(c.is_wide_sense_increasing());
        check_against_sampling(&f, &g, &c, 10, 2);
    }

    #[test]
    fn detects_pure_delay() {
        assert_eq!(as_pure_delay(&shapes::delta(Rat::int(3))), Some(Rat::int(3)));
        assert_eq!(as_pure_delay(&shapes::delta(Rat::ZERO)), Some(Rat::ZERO));
        assert_eq!(as_pure_delay(&lb(1, 1)), None);
        assert_eq!(as_pure_delay(&rl(1, 1)), None);
    }

    #[test]
    fn concavity_detection() {
        assert!(is_concave(&lb(2, 5)));
        assert!(is_concave(&lb(2, 5).min(&shapes::constant_rate(Rat::int(7)))));
        assert!(!is_concave(&rl(3, 1))); // convex, not concave
        assert!(is_concave(&shapes::constant_rate(Rat::int(3)))); // affine: both
        assert!(!is_concave(&shapes::delta(Rat::int(1))));
        assert!(!is_concave(&shapes::truncated_staircase(
            Rat::ONE,
            Rat::ONE,
            2
        )));
    }
}

//! Vendored property-testing harness.
//!
//! The build environment has no registry access, so upstream `proptest`
//! cannot be fetched. This crate reimplements the slice its users here
//! rely on: the `proptest!` macro (`pat in strategy` arguments, optional
//! `#![proptest_config(..)]` header), `Strategy` with
//! `prop_map`/`prop_filter`, range/tuple/collection/array strategies,
//! `any::<T>()`, and the `prop_assert*` macros. Cases are generated
//! from a deterministic per-test RNG; there is no shrinking — a failing
//! case panics with the standard assert message.

pub mod strategy;

pub mod test_runner {
    //! Deterministic case generator backing the `proptest!` macro.

    /// Splitmix64-based deterministic RNG, seeded from the test name so
    /// every run of a given test sees the same case sequence.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a hash).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, span)`, rejection-sampled.
        pub fn uniform(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }
    }

    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod collection {
    //! `Vec` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size arguments for [`vec`].
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.uniform(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[S::Value; N]`.
    pub struct ArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// `[T; 16]` with each element from `element`.
    pub fn uniform16<S: Strategy>(element: S) -> ArrayStrategy<S, 16> {
        ArrayStrategy(element)
    }

    /// `[T; 32]` with each element from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> ArrayStrategy<S, 32> {
        ArrayStrategy(element)
    }
}

pub mod prelude {
    //! The glob import used by test files.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Strategy picking uniformly among the listed alternative strategies
/// (all must generate the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Assert that holds within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

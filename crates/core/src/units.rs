//! Unit helpers: bytes, binary data rates, and SI times as exact
//! rationals, plus human-readable formatting for reproduction tables.
//!
//! Internally every model works in **bytes** and **seconds**; these
//! helpers exist so application code can speak the paper's units
//! (MiB/s, GiB/s, ms, µs) without sprinkling conversion constants.

use crate::num::{Rat, Value};

/// Bytes per KiB.
pub const KIB: i64 = 1 << 10;
/// Bytes per MiB.
pub const MIB: i64 = 1 << 20;
/// Bytes per GiB.
pub const GIB: i64 = 1 << 30;

/// `n` KiB in bytes.
pub fn kib(n: i64) -> Rat {
    Rat::int(n * KIB)
}

/// `n` MiB in bytes.
pub fn mib(n: i64) -> Rat {
    Rat::int(n * MIB)
}

/// `n` GiB in bytes.
pub fn gib(n: i64) -> Rat {
    Rat::int(n * GIB)
}

/// `x` MiB/s in bytes/s (accepts fractional measured rates).
pub fn mib_per_s(x: f64) -> Rat {
    Rat::from_f64(x) * Rat::int(MIB)
}

/// `x` GiB/s in bytes/s.
pub fn gib_per_s(x: f64) -> Rat {
    Rat::from_f64(x) * Rat::int(GIB)
}

/// `x` seconds.
pub fn secs(x: f64) -> Rat {
    Rat::from_f64(x)
}

/// `x` milliseconds in seconds.
pub fn millis(x: f64) -> Rat {
    Rat::from_f64(x) / Rat::int(1_000)
}

/// `x` microseconds in seconds.
pub fn micros(x: f64) -> Rat {
    Rat::from_f64(x) / Rat::int(1_000_000)
}

/// Render a byte count with a binary prefix (`20.6 MiB`).
pub fn fmt_bytes(v: Value) -> String {
    match v {
        Value::Infinity => "inf".to_string(),
        Value::NegInfinity => "-inf".to_string(),
        Value::Finite(r) => {
            let x = r.to_f64();
            let ax = x.abs();
            if ax >= GIB as f64 {
                format!("{:.2} GiB", x / GIB as f64)
            } else if ax >= MIB as f64 {
                format!("{:.2} MiB", x / MIB as f64)
            } else if ax >= KIB as f64 {
                format!("{:.2} KiB", x / KIB as f64)
            } else {
                format!("{x:.0} B")
            }
        }
    }
}

/// Render a rate in the paper's units (`355 MiB/s`, `10 GiB/s`).
pub fn fmt_rate(v: Value) -> String {
    match v {
        Value::Infinity => "inf".to_string(),
        Value::NegInfinity => "-inf".to_string(),
        Value::Finite(r) => {
            let x = r.to_f64();
            if x.abs() >= GIB as f64 {
                format!("{:.2} GiB/s", x / GIB as f64)
            } else {
                format!("{:.1} MiB/s", x / MIB as f64)
            }
        }
    }
}

/// Render a duration with an appropriate SI prefix (`46.9 ms`, `38 µs`).
pub fn fmt_time(v: Value) -> String {
    match v {
        Value::Infinity => "inf".to_string(),
        Value::NegInfinity => "-inf".to_string(),
        Value::Finite(r) => {
            let x = r.to_f64();
            let ax = x.abs();
            if ax >= 1.0 {
                format!("{x:.3} s")
            } else if ax >= 1e-3 {
                format!("{:.2} ms", x * 1e3)
            } else if ax >= 1e-6 {
                format!("{:.2} us", x * 1e6)
            } else {
                format!("{:.1} ns", x * 1e9)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(mib(1), Rat::int(1 << 20));
        assert_eq!(gib(2), Rat::int(2 << 30));
        assert_eq!(mib_per_s(355.0), Rat::int(355 * (1 << 20)));
        assert_eq!(millis(46.9).to_f64(), 0.0469);
        assert_eq!(micros(38.0).to_f64(), 38.0e-6);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_rate(Value::finite(mib_per_s(355.0))), "355.0 MiB/s");
        assert_eq!(fmt_rate(Value::finite(gib_per_s(10.0))), "10.00 GiB/s");
        assert_eq!(fmt_bytes(Value::finite(kib(3))), "3.00 KiB");
        assert_eq!(fmt_time(Value::finite(millis(46.9))), "46.90 ms");
        assert_eq!(fmt_time(Value::finite(micros(38.0))), "38.00 us");
        assert_eq!(fmt_time(Value::Infinity), "inf");
        assert_eq!(fmt_bytes(Value::Infinity), "inf");
    }
}

//! Vendored subset of the `serde` data-model traits.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the external `serde` crate cannot be fetched. This
//! crate reimplements the slice of serde's API that the workspace
//! actually uses — `Serialize`/`Deserialize` with derive support,
//! visitor-based deserialization, and the `ser`/`de` module layout —
//! with identical call-site syntax, so application code is written
//! exactly as it would be against the real crate and can be pointed
//! back at upstream serde unchanged when a registry is available.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros share the trait names, mirroring upstream serde's
// `features = ["derive"]` re-export.
pub use serde_derive::{Deserialize, Serialize};

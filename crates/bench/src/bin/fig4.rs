//! Figure 4 reproduction: BLAST network-calculus curves (α, β, α*) and
//! the simulated cumulative-output stairstep.

use nc_apps::blast;

fn main() {
    let r = blast::reproduce(42);
    let fig = blast::figure4(&r, 160);
    nc_bench::emit("fig4.csv", &fig.to_csv());
    println!(
        "Figure 4: {} sim points, stairstep within [beta, alpha*]: {}",
        fig.sim.len(),
        fig.sim_between_bounds(1024.0)
    );
}

//! Workspace-level integration tests: the full paper reproduction,
//! checked end to end across every crate. These are the acceptance
//! tests for EXPERIMENTS.md — if they pass, the tables and figures
//! regenerate within the documented tolerances.

use streamcalc::apps::{bitw, blast, paper};

#[test]
fn table1_blast_throughputs() {
    let r = blast::reproduce(42);
    let find = |needle: &str| {
        r.table1
            .iter()
            .find(|row| row.source.contains(needle))
            .unwrap_or_else(|| panic!("missing row {needle}"))
    };
    // NC bounds and the queueing roofline are analytic: exact match.
    assert!((find("upper").ours_mib_s - paper::table1::NC_UPPER).abs() < 0.5);
    assert!((find("lower").ours_mib_s - paper::table1::NC_LOWER).abs() < 0.5);
    assert!((find("Queueing").ours_mib_s - paper::table1::QUEUEING).abs() < 1.0);
    // The simulation is stochastic: 3% tolerance.
    let des = find("simulation").ours_mib_s;
    assert!((des - paper::table1::DES).abs() / paper::table1::DES < 0.03);
    // Ordering, as in the paper: lower ≤ DES ≈ measured < queueing < upper.
    assert!(paper::table1::NC_LOWER <= des + 3.0);
    assert!(des < find("Queueing").ours_mib_s);
    assert!(find("Queueing").ours_mib_s < find("upper").ours_mib_s);
}

#[test]
fn blast_bounds_corroborated() {
    let r = blast::reproduce(42);
    let b = &r.bounds;
    // Our model vs the paper's model: within 10%.
    assert!((b.delay_bound_s - b.paper_delay_bound_s).abs() / b.paper_delay_bound_s < 0.10);
    assert!(
        (b.backlog_bound_bytes - b.paper_backlog_bound_bytes).abs() / b.paper_backlog_bound_bytes
            < 0.10
    );
    // The §4.2 corroboration: simulation inside the modeled bounds.
    assert!(b.sim_within_bounds());
}

#[test]
fn figure4_shape() {
    let r = blast::reproduce(42);
    let fig = blast::figure4(&r, 80);
    // The stairstep lies between β and α* (the paper's visual claim).
    assert!(fig.sim_between_bounds(1024.0));
    // α dominates the stairstep.
    for &(t, v) in &fig.sim {
        let a = nc_apps::report::interp(&fig.alpha, t);
        assert!(v <= a + 1024.0, "sim above alpha at t={t}");
    }
    // All series are nonempty and monotone.
    for series in [&fig.alpha, &fig.beta, &fig.alpha_star, &fig.sim] {
        assert!(series.len() > 10);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-9);
        }
    }
}

#[test]
fn table3_bitw_throughputs() {
    let r = bitw::reproduce(42);
    let find = |needle: &str| {
        r.table3
            .iter()
            .find(|row| row.source.contains(needle))
            .unwrap()
    };
    // Lower bound & queueing: analytic, within rounding of the paper.
    assert!((find("lower bound").ours_mib_s - 56.0).abs() < 0.5);
    assert!((find("Queueing").ours_mib_s - paper::table3::QUEUEING).abs() < 2.0);
    // DES within 10% of the paper's.
    let des = find("simulation").ours_mib_s;
    assert!((des - paper::table3::DES).abs() / paper::table3::DES < 0.10);
    // The paper's qualitative story: sim just above the lower bound,
    // queueing optimistic by ~2.5x, upper bound several times lower.
    assert!(des > find("lower bound").ours_mib_s);
    assert!(find("Queueing").ours_mib_s > 2.0 * des);
    assert!(find("upper").ours_mib_s > find("Queueing").ours_mib_s);
}

#[test]
fn bitw_bounds_corroborated() {
    let r = bitw::reproduce(42);
    let b = &r.bounds;
    assert!((b.delay_bound_s - b.paper_delay_bound_s).abs() / b.paper_delay_bound_s < 0.05);
    assert!(
        (b.backlog_bound_bytes - b.paper_backlog_bound_bytes).abs() / b.paper_backlog_bound_bytes
            < 0.05
    );
    assert!(b.sim_within_bounds());
    // The paper's observed-delay band is reproduced within ~20%.
    assert!((b.sim_delay_min_s - b.paper_sim_delay_s.0).abs() / b.paper_sim_delay_s.0 < 0.2);
    assert!((b.sim_delay_max_s - b.paper_sim_delay_s.1).abs() / b.paper_sim_delay_s.1 < 0.2);
}

#[test]
fn figure10_shape() {
    let r = bitw::reproduce(42);
    let fig = bitw::figure10(&r, 80);
    assert!(fig.sim_between_bounds(1024.0));
}

#[test]
fn reproduction_is_deterministic() {
    let a = bitw::reproduce(7);
    let b = bitw::reproduce(7);
    assert_eq!(a.sim.throughput, b.sim.throughput);
    assert_eq!(a.sim.delay_max, b.sim.delay_max);
    let c = bitw::reproduce(8);
    assert_ne!(a.sim.delay_max, c.sim.delay_max);
}

#[test]
fn seeds_do_not_change_conclusions() {
    // The qualitative results are seed-independent.
    for seed in [1u64, 99, 12345] {
        let r = bitw::reproduce(seed);
        let des = r
            .table3
            .iter()
            .find(|row| row.source.contains("simulation"))
            .unwrap()
            .ours_mib_s;
        assert!((55.0..70.0).contains(&des), "seed {seed}: DES {des}");
        assert!(r.bounds.sim_within_bounds(), "seed {seed}");
    }
}

//! Exact lower/upper envelopes of finite families of lines.
//!
//! Min-plus convolution and deconvolution of piecewise-linear curves
//! reduce, on each interval between candidate breakpoints, to the
//! pointwise min (resp. max) of finitely many affine "strategies". The
//! envelope of a family of lines is computed exactly in rational
//! arithmetic by the classic slope-ordered stack construction.

use crate::num::Rat;

/// A line `u ↦ v0 + slope · u` over the local coordinate `u`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Line {
    /// Value at `u = 0`.
    pub v0: Rat,
    /// Slope.
    pub slope: Rat,
}

/// One affine piece of an envelope: valid on `[start, next_start)` (the
/// last piece extends to the domain end).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Piece {
    /// Piece start in local coordinates (`≥ 0`).
    pub start: Rat,
    /// Envelope value at `start`.
    pub value: Rat,
    /// Envelope slope on the piece.
    pub slope: Rat,
}

/// Lower envelope (pointwise min) of `lines` restricted to `[0, len)`
/// (`len = None` means `[0, ∞)`).
///
/// Returns at least one piece; pieces have strictly increasing starts
/// beginning at `0`, and the envelope is continuous and concave.
///
/// # Panics
/// Panics if `lines` is empty or `len ≤ 0`.
pub fn lower_envelope(lines: &[Line], len: Option<Rat>) -> Vec<Piece> {
    envelope(lines, len, false)
}

/// Upper envelope (pointwise max) of `lines` restricted to `[0, len)`.
/// The result is continuous and convex.
pub fn upper_envelope(lines: &[Line], len: Option<Rat>) -> Vec<Piece> {
    envelope(lines, len, true)
}

fn envelope(lines: &[Line], len: Option<Rat>, upper: bool) -> Vec<Piece> {
    assert!(!lines.is_empty(), "envelope of empty line family");
    if let Some(l) = len {
        assert!(l.is_positive(), "envelope needs positive domain length");
    }
    // Reduce max to min by negation.
    let mut ls: Vec<Line> = if upper {
        lines
            .iter()
            .map(|l| Line {
                v0: -l.v0,
                slope: -l.slope,
            })
            .collect()
    } else {
        lines.to_vec()
    };

    // Sort by slope descending; among equal slopes only the lowest line
    // can ever be minimal.
    ls.sort_by(|a, b| b.slope.cmp(&a.slope).then(a.v0.cmp(&b.v0)));
    ls.dedup_by(|next, prev| next.slope == prev.slope);

    // Stack of (line, start), where start is the abscissa from which the
    // line is the minimum (None = -infinity). Lines are added in order
    // of strictly decreasing slope, so each new line wins eventually.
    let mut stack: Vec<(Line, Option<Rat>)> = Vec::with_capacity(ls.len());
    for l in ls {
        loop {
            match stack.last() {
                None => {
                    stack.push((l, None));
                    break;
                }
                Some(&(top, top_start)) => {
                    // top.slope > l.slope strictly (deduped); they cross at
                    // u* where top.v0 + top.slope u = l.v0 + l.slope u.
                    let u_star = (l.v0 - top.v0) / (top.slope - l.slope);
                    // The new line is minimal for u > u*.
                    match top_start {
                        Some(ts) if u_star <= ts => {
                            // Top line never minimal: replaced before it starts.
                            stack.pop();
                        }
                        _ => {
                            stack.push((l, Some(u_star)));
                            break;
                        }
                    }
                }
            }
        }
    }

    // Clip the full-line envelope to [0, len).
    let mut out: Vec<Piece> = Vec::new();
    for (i, &(l, start)) in stack.iter().enumerate() {
        let piece_start = start.unwrap_or(Rat::ZERO).max(Rat::ZERO);
        let piece_end = stack.get(i + 1).and_then(|&(_, s)| s);
        // Skip pieces entirely left of 0 or right of len.
        if let Some(e) = piece_end {
            if e <= piece_start {
                continue;
            }
            if e <= Rat::ZERO {
                continue;
            }
        }
        if let Some(limit) = len {
            if piece_start >= limit {
                continue;
            }
        }
        let value = l.v0 + l.slope * piece_start;
        let sign = if upper { -Rat::ONE } else { Rat::ONE };
        out.push(Piece {
            start: piece_start,
            value: value * sign,
            slope: l.slope * sign,
        });
    }
    debug_assert!(!out.is_empty());
    debug_assert!(out[0].start.is_zero());
    out
}

/// Evaluate an envelope (as returned by the functions above) at `u`.
#[cfg(test)]
fn eval_pieces(pieces: &[Piece], u: Rat) -> Rat {
    let mut cur = pieces[0];
    for p in pieces {
        if p.start <= u {
            cur = *p;
        } else {
            break;
        }
    }
    cur.value + cur.slope * (u - cur.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::rat;

    fn line(v0: i64, slope: i64) -> Line {
        Line {
            v0: Rat::int(v0),
            slope: Rat::int(slope),
        }
    }

    #[test]
    fn single_line() {
        let env = lower_envelope(&[line(3, 2)], None);
        assert_eq!(env.len(), 1);
        assert_eq!(env[0].start, Rat::ZERO);
        assert_eq!(env[0].value, Rat::int(3));
        assert_eq!(env[0].slope, Rat::int(2));
    }

    #[test]
    fn two_lines_cross_inside() {
        // y = 3u and y = 5 + 2u cross at u = 5.
        let env = lower_envelope(&[line(0, 3), line(5, 2)], None);
        assert_eq!(env.len(), 2);
        assert_eq!(env[0].start, Rat::ZERO);
        assert_eq!(env[0].slope, Rat::int(3));
        assert_eq!(env[1].start, Rat::int(5));
        assert_eq!(env[1].value, Rat::int(15));
        assert_eq!(env[1].slope, Rat::int(2));
    }

    #[test]
    fn dominated_line_removed() {
        // Middle line is everywhere above the envelope of the others.
        let env = lower_envelope(&[line(0, 3), line(100, 2), line(5, 1)], None);
        // 3u vs 5 + u: cross at 2.5.
        assert_eq!(env.len(), 2);
        assert_eq!(env[1].start, rat(5, 2));
    }

    #[test]
    fn equal_slopes_keep_lowest() {
        let env = lower_envelope(&[line(7, 2), line(3, 2)], None);
        assert_eq!(env.len(), 1);
        assert_eq!(env[0].value, Rat::int(3));
    }

    #[test]
    fn clipping_to_bounded_domain() {
        // Crossing at u = 5 but domain is [0, 4): single piece.
        let env = lower_envelope(&[line(0, 3), line(5, 2)], Some(Rat::int(4)));
        assert_eq!(env.len(), 1);
        assert_eq!(env[0].slope, Rat::int(3));
    }

    #[test]
    fn crossing_left_of_zero() {
        // y = 10 + 5u vs y = 2 + u: cross at u = -2; the flat line wins
        // on the whole domain.
        let env = lower_envelope(&[line(10, 5), line(2, 1)], None);
        assert_eq!(env.len(), 1);
        assert_eq!(env[0].value, Rat::int(2));
        assert_eq!(env[0].slope, Rat::ONE);
    }

    #[test]
    fn upper_envelope_is_max() {
        let env = upper_envelope(&[line(0, 3), line(5, 2)], None);
        // Max: 5 + 2u wins until u = 5, then 3u.
        assert_eq!(env.len(), 2);
        assert_eq!(env[0].value, Rat::int(5));
        assert_eq!(env[0].slope, Rat::int(2));
        assert_eq!(env[1].start, Rat::int(5));
        assert_eq!(env[1].slope, Rat::int(3));
    }

    #[test]
    fn matches_brute_force_min() {
        let lines = [line(0, 4), line(2, 3), line(7, 1), line(12, 0), line(1, 2)];
        let env = lower_envelope(&lines, None);
        for num in 0..60 {
            let u = rat(num, 3);
            let brute = lines.iter().map(|l| l.v0 + l.slope * u).min().unwrap();
            assert_eq!(eval_pieces(&env, u), brute, "u = {u:?}");
        }
    }

    #[test]
    fn matches_brute_force_max() {
        let lines = [line(0, 4), line(2, 3), line(7, 1), line(12, 0), line(1, 2)];
        let env = upper_envelope(&lines, None);
        for num in 0..60 {
            let u = rat(num, 3);
            let brute = lines.iter().map(|l| l.v0 + l.slope * u).max().unwrap();
            assert_eq!(eval_pieces(&env, u), brute, "u = {u:?}");
        }
    }
}

//! Stage-parallel engine properties (DESIGN.md §12): the conservative
//! PDES must be *bit-identical across worker counts* (the partition of
//! LPs onto threads decides only when an LP runs, never what it
//! computes), volume-exact against the sequential thinned engine on
//! fault-free runs (same jobs, same bytes, different sample paths), and
//! fault-transparent (a zero-fault schedule changes nothing; an open
//! fault window is never jumped — enforced by debug assertions that
//! these runs exercise).

use nc_core::num::Rat;
use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use nc_streamsim::{
    simulate, FaultSchedule, Outage, RecoveryPolicy, ServiceModel, SimConfig, StageFault, StallSpec,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GenNode {
    rmin: i64,
    spread: i64,
    job_in_log2: u32,
    job_out_log2: u32,
    latency_ms: i64,
}

#[derive(Debug, Clone)]
struct GenCase {
    pipeline: Pipeline,
    chunk: u64,
    total: u64,
}

/// Random 1–4 node pipelines with power-of-two job sizes and totals
/// that may end in a partial chunk. Queues are always unbounded — the
/// parallel engine's supported domain (bounded configs route to the
/// sequential path). Rates are free, so cases span underloaded and
/// overloaded pipelines.
fn arb_case() -> impl Strategy<Value = GenCase> {
    let node = (500i64..20_000, 0i64..5_000, 4u32..8, 4u32..8, 0i64..20).prop_map(
        |(rmin, spread, ji, jo, lat)| GenNode {
            rmin,
            spread,
            job_in_log2: ji,
            job_out_log2: jo,
            latency_ms: lat,
        },
    );
    (
        proptest::collection::vec(node, 1..5),
        200i64..30_000, // source rate
        1u64..4,        // chunk = mult * job_in(0)
        1u64..40,       // whole chunks
        0u64..64,       // partial tail bytes
    )
        .prop_map(|(gens, src_rate, chunk_mult, chunks, tail)| {
            let nodes: Vec<Node> = gens
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    Node::new(
                        format!("n{i}"),
                        NodeKind::Compute,
                        StageRates::new(
                            Rat::int(g.rmin),
                            Rat::int(g.rmin + g.spread / 2),
                            Rat::int(g.rmin + g.spread),
                        ),
                        Rat::new(g.latency_ms as i128, 1000),
                        Rat::int(1 << g.job_in_log2),
                        Rat::int(1 << g.job_out_log2),
                    )
                })
                .collect();
            let chunk = chunk_mult << gens[0].job_in_log2;
            let pipeline = Pipeline::new(
                "par-equiv",
                Source {
                    rate: Rat::int(src_rate),
                    burst: Rat::int(chunk as i64),
                },
                nodes,
            );
            GenCase {
                pipeline,
                chunk,
                total: chunk * chunks + tail % chunk.min(64),
            }
        })
}

/// Arbitrary valid per-stage fault (same shape as `prop_faults`):
/// derate + optional stall + non-overlapping outage windows + a random
/// recovery policy.
fn arb_stage_fault() -> impl Strategy<Value = StageFault> {
    let stall = (any::<bool>(), 2i64..60, 2u32..6).prop_map(|(on, per_ms, k)| {
        on.then(|| StallSpec {
            budget: per_ms as f64 / 1000.0 / (1u64 << k) as f64,
            period: per_ms as f64 / 1000.0,
        })
    });
    let outages = proptest::collection::vec((0.0f64..4.0, 0.0f64..0.4), 0..3).prop_map(|ws| {
        let mut t = 0.0;
        let mut v = Vec::new();
        for (gap, dur) in ws {
            t += gap;
            v.push(Outage {
                start: t,
                duration: dur,
            });
            t += dur + 1e-3;
        }
        v
    });
    let recovery = prop_oneof![
        Just(RecoveryPolicy::Block),
        Just(RecoveryPolicy::Block),
        Just(RecoveryPolicy::Drop),
        (1i64..20, 0u32..6).prop_map(|(b, k)| RecoveryPolicy::Retry {
            base: b as f64 / 1000.0,
            cap: b as f64 / 1000.0 * (1u64 << k) as f64,
        }),
    ];
    (0i64..60, stall, outages, recovery).prop_map(|(pct, stall, outages, recovery)| StageFault {
        derate: pct as f64 / 100.0,
        stall,
        outages,
        recovery,
    })
}

fn arb_faulted_case() -> impl Strategy<Value = (GenCase, FaultSchedule)> {
    (
        arb_case(),
        proptest::collection::vec(arb_stage_fault(), 4),
        0u64..10_000,
    )
        .prop_map(|(case, mut stages, fseed)| {
            stages.truncate(case.pipeline.nodes.len());
            let schedule = FaultSchedule {
                seed: fseed,
                stages,
            };
            (case, schedule)
        })
}

fn cfg(case: &GenCase, seed: u64, model: ServiceModel, workers: Option<usize>) -> SimConfig {
    SimConfig {
        seed,
        total_input: case.total,
        source_chunk: Some(case.chunk),
        queue_capacity: None,
        queue_capacities: None,
        trace: false,
        service_model: model,
        fast_forward: true,
        faults: None,
        workers,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Worker-count invariance: every LP owns its RNG, clock, queue and
    /// statistics, and link messages are produced by exactly one LP in
    /// a deterministic order — so the thread partition cannot change
    /// any result bit. `workers = 1` (round-robin in one thread) and
    /// `workers = n` (scoped threads + watermark blocking) must agree
    /// on the whole [`nc_streamsim::SimResult`].
    #[test]
    fn par_is_bitwise_invariant_across_worker_counts(
        case in arb_case(),
        seed in 0u64..10_000,
        model in prop_oneof![Just(ServiceModel::Uniform), Just(ServiceModel::Exponential)],
        workers in 2usize..6,
    ) {
        let solo = simulate(&case.pipeline, &cfg(&case, seed, model, Some(1)));
        let par = simulate(&case.pipeline, &cfg(&case, seed, model, Some(workers)));
        prop_assert_eq!(solo, par);
    }

    /// The same invariance under arbitrary fault schedules — stalls,
    /// derates, outages under all three recovery policies. These runs
    /// also exercise the engine's fault-gating debug assertions: a
    /// stage's completion never lands strictly inside one of its open
    /// Block-policy outage windows, and no emission precedes the
    /// published watermark (the NC lookahead promise is fault-aware).
    #[test]
    fn par_faulted_is_bitwise_invariant_across_worker_counts(
        (case, schedule) in arb_faulted_case(),
        seed in 0u64..10_000,
        model in prop_oneof![Just(ServiceModel::Uniform), Just(ServiceModel::Exponential)],
        workers in 2usize..6,
    ) {
        let mut c1 = cfg(&case, seed, model, Some(1));
        c1.faults = Some(schedule.clone());
        let mut cn = cfg(&case, seed, model, Some(workers));
        cn.faults = Some(schedule);
        let solo = simulate(&case.pipeline, &c1);
        let par = simulate(&case.pipeline, &cn);
        prop_assert_eq!(solo, par);
    }

    /// A zero-fault schedule is bit-transparent in the parallel engine,
    /// exactly as it is in the sequential engines: scheduling `none(n)`
    /// must not perturb a single bit of the result.
    #[test]
    fn par_zero_fault_schedule_is_bit_transparent(
        case in arb_case(),
        seed in 0u64..10_000,
        workers in 1usize..5,
    ) {
        let plain = simulate(&case.pipeline, &cfg(&case, seed, ServiceModel::Uniform, Some(workers)));
        let mut c = cfg(&case, seed, ServiceModel::Uniform, Some(workers));
        c.faults = Some(FaultSchedule::none(case.pipeline.nodes.len()));
        let scheduled = simulate(&case.pipeline, &c);
        prop_assert_eq!(plain, scheduled);
    }

    /// Fault-free volume conservation against the sequential thinned
    /// engine: the parallel engine draws *different* service times
    /// (per-stage RNG streams), but moves exactly the same data —
    /// source emissions, per-node job counts and input bytes, total
    /// events, output bytes and the residual left in flight are all
    /// sample-path independent and must match exactly.
    #[test]
    fn par_volumes_match_sequential_engine(
        case in arb_case(),
        seed in 0u64..10_000,
        model in prop_oneof![Just(ServiceModel::Uniform), Just(ServiceModel::Exponential)],
    ) {
        let seq = simulate(&case.pipeline, &cfg(&case, seed, model, None));
        let par = simulate(&case.pipeline, &cfg(&case, seed, model, Some(2)));
        prop_assert_eq!(seq.events, par.events);
        prop_assert_eq!(seq.bytes_out, par.bytes_out);
        prop_assert_eq!(seq.residual, par.residual);
        prop_assert_eq!(par.dropped_jobs, 0);
        prop_assert_eq!(par.retries, 0);
        for (s, p) in seq.per_node.iter().zip(&par.per_node) {
            prop_assert_eq!(&s.name, &p.name);
            prop_assert_eq!(s.jobs, p.jobs);
            prop_assert_eq!(s.bytes_in, p.bytes_in);
        }
    }
}

/// Statistical equivalence on a fixed near-critical workload: the
/// parallel engine's sample path differs from the sequential engine's
/// (different RNG stream layout), so throughput and delay agree only in
/// distribution. A 64 MiB run is long enough that the long-run averages
/// of the two engines land within a few percent of each other.
#[test]
fn par_statistics_track_sequential_engine() {
    let p = Pipeline::new(
        "stats",
        Source {
            rate: Rat::int(9_000),
            burst: Rat::int(1024),
        },
        vec![
            Node::new(
                "a",
                NodeKind::Compute,
                StageRates::new(Rat::int(9_500), Rat::int(10_000), Rat::int(10_500)),
                Rat::ZERO,
                Rat::int(1024),
                Rat::int(512),
            ),
            Node::new(
                "b",
                NodeKind::Compute,
                StageRates::new(Rat::int(11_000), Rat::int(12_000), Rat::int(13_000)),
                Rat::ZERO,
                Rat::int(512),
                Rat::int(1024),
            ),
        ],
    );
    let c = |workers| SimConfig {
        seed: 7,
        total_input: 1 << 22,
        source_chunk: Some(1024),
        queue_capacity: None,
        queue_capacities: None,
        trace: false,
        service_model: ServiceModel::Uniform,
        fast_forward: true,
        faults: None,
        workers,
    };
    let seq = simulate(&p, &c(None));
    let par = simulate(&p, &c(Some(4)));
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(
        rel(par.throughput, seq.throughput) < 0.05,
        "throughput diverged: par {} vs seq {}",
        par.throughput,
        seq.throughput
    );
    assert!(
        rel(par.delay_mean, seq.delay_mean) < 0.25,
        "mean delay diverged: par {} vs seq {}",
        par.delay_mean,
        seq.delay_mean
    );
    assert!(
        rel(par.peak_backlog, seq.peak_backlog) < 0.5,
        "peak backlog diverged: par {} vs seq {}",
        par.peak_backlog,
        seq.peak_backlog
    );
}

//! Vertical and horizontal deviations between curves.
//!
//! For an arrival curve `α` and service curve `β` these are the
//! fundamental performance bounds of §3 of the paper:
//!
//! * the **backlog bound** `x(t) ≤ sup_t {α(t) − β(t)}` (vertical
//!   deviation) — the maximum data resident in the system;
//! * the **virtual delay bound** `d(t) ≤ sup_t inf{d : α(t) ≤ β(t+d)}`
//!   (horizontal deviation) — the maximum time for the system to emit
//!   as much data as was sent.
//!
//! For the leaky-bucket/rate-latency pair these reduce to the paper's
//! closed forms `x ≤ b + R_α·T` and `d ≤ T + b/R_β` (tested below).

use super::conv::is_concave;
use crate::curve::pwl::Curve;
use crate::num::{Rat, Value};

/// Recognize the rate-latency shape `β(t) = [R·(t − T)]⁺` and return
/// `(R, T)` — delegates to [`Curve::as_rate_latency`], which covers
/// every service curve a pipeline stage feeds into the bounds.
fn as_rate_latency(g: &Curve) -> Option<(Rat, Rat)> {
    g.as_rate_latency()
}

/// Vertical deviation `sup_{t ≥ 0} { f(t) − g(t) }`.
///
/// Returns `+∞` when `f` outgrows `g` (in particular the overload case
/// `R_α > R_β`). Points where `g = +∞` impose no constraint.
pub fn vertical_deviation(f: &Curve, g: &Curve) -> Value {
    // Tail behaviour.
    match (f.ultimate_slope(), g.ultimate_slope()) {
        (Value::Finite(rf), Value::Finite(rg)) if rf > rg => return Value::Infinity,
        _ => {}
    }
    // Fast path for the canonical arrival/service pair: `f` concave
    // (finite everywhere, only jump at 0), `g = RL(R, T)`. Then `f − g`
    // is concave on `(0, ∞)` with vertices only at `f`'s breakpoints
    // and at `T`, and its tail slope is `rf − R ≤ 0` (the guard above),
    // so the supremum is attained at one of those vertices. `g` is
    // evaluated in closed form — no searches, no probe loop.
    if let Some((rate, latency)) = as_rate_latency(g) {
        if is_concave(f) {
            let g_at = |x: Rat| {
                if x <= latency {
                    Value::ZERO
                } else {
                    Value::finite(rate * (x - latency))
                }
            };
            let mut best = f.eval(latency); // g(T) = 0
            for bp in f.breakpoints() {
                let gv = g_at(bp.x);
                best = best.max(bp.v - gv).max(bp.v_right - gv);
            }
            return best.pos();
        }
    }
    vertical_deviation_scan(f, g)
}

/// General probe-based scan behind [`vertical_deviation`]; assumes the
/// tail guard already ran.
fn vertical_deviation_scan(f: &Curve, g: &Curve) -> Value {
    let t_star = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    let mut best = Value::NegInfinity;
    let mut probe = |fv: Value, gv: Value| {
        if gv.is_infinite() {
            return;
        }
        if fv.is_infinite() {
            best = Value::Infinity;
            return;
        }
        best = best.max(fv - gv);
    };
    let mut xs: Vec<Rat> = f
        .breakpoints()
        .iter()
        .chain(g.breakpoints())
        .map(|bp| bp.x)
        .collect();
    xs.push(t_star);
    xs.sort_unstable();
    xs.dedup();
    for &x in &xs {
        probe(f.eval(x), g.eval(x));
        probe(f.eval_right(x), g.eval_right(x));
        if x.is_positive() {
            probe(f.eval_left(x), g.eval_left(x));
        }
    }
    if best == Value::NegInfinity {
        // g infinite wherever probed: no constraint violated.
        Value::ZERO
    } else {
        best.pos()
    }
}

/// Horizontal deviation
/// `sup_{t ≥ 0} inf { d ≥ 0 : f(t) ≤ g(t + d) }`.
///
/// Computed through the lower pseudo-inverse `g⁻`: the delay at `t` is
/// `[g⁻(f(t)) − t]⁺`, and the supremum is attained at a breakpoint of
/// `f`, at a point where `f` crosses one of `g`'s breakpoint *levels*,
/// or in the common tail.
pub fn horizontal_deviation(f: &Curve, g: &Curve) -> Value {
    match (f.ultimate_slope(), g.ultimate_slope()) {
        (Value::Finite(rf), Value::Finite(rg)) if rf > rg => return Value::Infinity,
        (Value::Infinity, Value::Finite(_)) => return Value::Infinity,
        _ => {}
    }
    // Fast path for concave `f` vs `g = RL(R, T)` with `R > 0`: the
    // pseudo-inverse is affine, `g⁻(y) = T + y/R` for `y > 0`, so the
    // delay profile `D(t) = g⁻(f(t)) − t` is concave piecewise-affine
    // with vertices only at `f`'s breakpoints and tail slope
    // `rf/R − 1 ≤ 0` (the guard above). The supremum is one of the
    // one-sided limits at those vertices. A vertex value of 0 only
    // contributes through its *right* limit, and only when `f` leaves 0
    // there (the level is then approached from above, pinning the limit
    // at `T + 0/R − x`); a vertex where `f` stays 0 contributes no
    // delay at all.
    // (A concave `f` dipping negative could re-enter the positive range
    // *inside* a segment, where the sup is not at a vertex — require
    // nonnegative vertices, which pins the whole finite prefix ≥ 0.)
    let nonneg = |f: &Curve| {
        f.breakpoints().iter().all(|bp| {
            !matches!(bp.v, Value::Finite(v) if v.is_negative())
                && !matches!(bp.v_right, Value::Finite(v) if v.is_negative())
        })
    };
    if let Some((rate, latency)) = as_rate_latency(g) {
        if rate.is_positive() && is_concave(f) && nonneg(f) {
            let mut best = Rat::ZERO;
            for bp in f.breakpoints() {
                // Finite by `is_concave`.
                let (Value::Finite(v), Value::Finite(vr)) = (bp.v, bp.v_right) else {
                    unreachable!("concave curves are finite everywhere");
                };
                if v.is_positive() {
                    best = best.max(latency + v / rate - bp.x);
                }
                if vr.is_positive() || (vr.is_zero() && bp.slope.is_positive()) {
                    best = best.max(latency + vr / rate - bp.x);
                }
            }
            return Value::finite(best);
        }
    }
    horizontal_deviation_scan(f, g)
}

/// General pseudo-inverse scan behind [`horizontal_deviation`]; assumes
/// the tail guard already ran.
fn horizontal_deviation_scan(f: &Curve, g: &Curve) -> Value {
    let t_star = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    // Candidate abscissas of f.
    let mut ts: Vec<Rat> = f.breakpoints().iter().map(|bp| bp.x).collect();
    // Points where f reaches (or leaves) one of g's breakpoint levels.
    for bg in g.breakpoints() {
        for level in [bg.v, bg.v_right] {
            if let Value::Finite(t) = f.lower_pseudo_inverse(level) {
                ts.push(t);
            }
            if let Value::Finite(t) = f.upper_pseudo_inverse(level) {
                ts.push(t);
            }
        }
    }
    ts.push(t_star);
    ts.sort_unstable();
    ts.dedup();

    // The delay profile D(t) = [g⁻(f(t)) − t]⁺ is affine between
    // candidates but may be discontinuous at them; the supremum is one
    // of: the value at a candidate, or a one-sided limit there. The
    // right limit goes through the *upper* pseudo-inverse because the
    // level approaches f(t⁺) from above.
    let mut best = Value::ZERO;
    for &t in &ts {
        best = best.max(delay_via(g.lower_pseudo_inverse(f.eval(t)), t));
        // Right limit: a finite level is approached from strictly above
        // (upper pseudo-inverse); an infinite level stays infinite and
        // is served once g itself diverges (lower pseudo-inverse).
        let vr = f.eval_right(t);
        let s = if vr.is_infinite() {
            g.lower_pseudo_inverse(vr)
        } else {
            g.upper_pseudo_inverse(vr)
        };
        best = best.max(delay_via(s, t));
        if t.is_positive() {
            best = best.max(delay_via(g.lower_pseudo_inverse(f.eval_left(t)), t));
        }
    }
    best
}

/// Delay `[s − t]⁺` for a pseudo-inverse result `s`.
fn delay_via(s: Value, t: Rat) -> Value {
    match s {
        Value::Infinity => Value::Infinity,
        Value::Finite(s) => Value::finite((s - t).max(Rat::ZERO)),
        Value::NegInfinity => Value::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    #[test]
    fn paper_closed_form_backlog() {
        // x ≤ b + R_α · T  for α = LB(R_α, b), β = RL(R_β, T), R_α ≤ R_β.
        let a = lb(2, 5);
        let b = rl(3, 4);
        assert_eq!(vertical_deviation(&a, &b), Value::from(5 + 2 * 4));
    }

    #[test]
    fn paper_closed_form_delay() {
        // d ≤ T + b / R_β.
        let a = lb(2, 5);
        let b = rl(3, 4);
        assert_eq!(
            horizontal_deviation(&a, &b),
            Value::finite(Rat::int(4) + rat(5, 3))
        );
    }

    #[test]
    fn equal_rates_still_finite() {
        let a = lb(3, 5);
        let b = rl(3, 4);
        assert_eq!(vertical_deviation(&a, &b), Value::from(5 + 3 * 4));
        assert_eq!(
            horizontal_deviation(&a, &b),
            Value::finite(Rat::int(4) + rat(5, 3))
        );
    }

    #[test]
    fn overload_diverges() {
        let a = lb(5, 1);
        let b = rl(3, 1);
        assert_eq!(vertical_deviation(&a, &b), Value::Infinity);
        assert_eq!(horizontal_deviation(&a, &b), Value::Infinity);
    }

    #[test]
    fn identical_curves_zero_deviation() {
        let a = lb(2, 5);
        assert_eq!(vertical_deviation(&a, &a), Value::ZERO);
        assert_eq!(horizontal_deviation(&a, &a), Value::ZERO);
    }

    #[test]
    fn service_above_arrival_zero() {
        let a = shapes::constant_rate(Rat::int(2));
        let b = shapes::constant_rate(Rat::int(5));
        assert_eq!(vertical_deviation(&a, &b), Value::ZERO);
        assert_eq!(horizontal_deviation(&a, &b), Value::ZERO);
    }

    #[test]
    fn delta_service_pure_delay() {
        // β = δ_T serves everything after delay T: hdev = T, vdev = α(T).
        let a = lb(2, 5);
        let d = shapes::delta(Rat::int(3));
        assert_eq!(horizontal_deviation(&a, &d), Value::from(3));
        // vdev: sup α(t) − δ(t) over t ≤ 3 (δ = 0 there, ∞ after) = α(3) = 11.
        assert_eq!(vertical_deviation(&a, &d), Value::from(11));
    }

    #[test]
    fn multi_segment_deviation() {
        // Dual token bucket vs rate-latency: the binding point is interior.
        let a = lb(6, 1).min(&lb(2, 9)); // crossing at t = 2
        let b = rl(3, 2);
        // vdev candidates: at t=2: α=13, β=0 → 13; later α grows at 2 < 3.
        assert_eq!(vertical_deviation(&a, &b), Value::from(13));
        // hdev at t=2⁻: α=13 → β reaches 13 at 2 + 13/3; minus t=2 → 13/3.
        assert_eq!(horizontal_deviation(&a, &b), Value::finite(rat(13, 3)));
    }

    /// The concave-vs-rate-latency fast paths must agree exactly with
    /// the general scans on a grid of shapes, including the tricky
    /// cases: zero burst, zero latency, equal rates, plateaus (zero
    /// final slope), and multi-segment concave arrivals.
    #[test]
    fn fast_paths_match_general_scan() {
        let arrivals = [
            lb(2, 5),
            lb(2, 0),
            shapes::constant_rate(Rat::int(3)),
            shapes::constant(Rat::int(7)),
            shapes::constant(Rat::ZERO),
            lb(6, 1).min(&lb(2, 9)),
            lb(9, 2).min(&lb(4, 6)).min(&lb(1, 20)),
            lb(3, 4).min(&shapes::constant(Rat::int(10))), // plateau tail
        ];
        let services = [
            rl(3, 4),
            rl(3, 0),
            rl(2, 7),
            shapes::constant_rate(Rat::int(5)),
        ];
        for a in &arrivals {
            for b in &services {
                assert!(as_rate_latency(b).is_some(), "detector must fire: {b:?}");
                let guard = matches!(
                    (a.ultimate_slope(), b.ultimate_slope()),
                    (Value::Finite(ra), Value::Finite(rb)) if ra > rb
                );
                if guard {
                    assert_eq!(vertical_deviation(a, b), Value::Infinity);
                    assert_eq!(horizontal_deviation(a, b), Value::Infinity);
                    continue;
                }
                assert_eq!(
                    vertical_deviation(a, b),
                    vertical_deviation_scan(a, b),
                    "vdev fast path diverged for {a:?} vs {b:?}"
                );
                // For f ≡ 0 the scan is loose (its right-limit probe
                // assumes level 0 is approached from above and reports
                // g's latency); the fast path returns the true sup, 0.
                if *a == shapes::constant(Rat::ZERO) {
                    assert_eq!(horizontal_deviation(a, b), Value::ZERO);
                    assert!(horizontal_deviation_scan(a, b) >= Value::ZERO);
                } else {
                    assert_eq!(
                        horizontal_deviation(a, b),
                        horizontal_deviation_scan(a, b),
                        "hdev fast path diverged for {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn deviation_vs_dense_sampling() {
        let a = lb(2, 3).min(&shapes::constant_rate(Rat::int(4)));
        let b = rl(3, 2).add(&rl(1, 1));
        let v = vertical_deviation(&a, &b);
        let h = horizontal_deviation(&a, &b);
        for num in 0..200 {
            let t = rat(num, 8);
            let av = a.eval(t);
            let bv = b.eval(t);
            if !bv.is_infinite() {
                assert!(v >= (av - bv).pos(), "vdev missed t={t:?}");
            }
            // hdev: the delay at this t never exceeds h.
            if let Value::Finite(hf) = h {
                assert!(a.eval(t) <= b.eval(t + hf), "hdev missed t={t:?}");
            }
        }
    }
}

//! The LZ4 **frame** format on top of the block codec — the container
//! an actual bump-in-the-wire deployment would put on the wire
//! (self-describing blocks, xxHash32 integrity checks, streaming
//! chunking built in).
//!
//! Implements the LZ4 Frame Format v1.6.1 subset used for streaming:
//! magic number, frame descriptor (FLG/BD/HC), independent data blocks
//! with optional per-block checksums, optional content checksum, and
//! the uncompressed-block escape for incompressible data.

use crate::lz4;
use crate::xxhash::{xxh32, Xxh32};

/// LZ4 frame magic number (little-endian on the wire).
pub const MAGIC: u32 = 0x184D2204;

/// Frame-level options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameOptions {
    /// Uncompressed bytes per block (any positive size up to 4 MiB; the
    /// BD byte is set to the smallest standard size class that fits).
    pub block_size: usize,
    /// Append a 4-byte xxHash32 after every block.
    pub block_checksums: bool,
    /// Append a 4-byte xxHash32 of the whole content at the end.
    pub content_checksum: bool,
}

impl Default for FrameOptions {
    fn default() -> Self {
        FrameOptions {
            block_size: 64 << 10,
            block_checksums: false,
            content_checksum: true,
        }
    }
}

/// Frame decoding errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Wrong magic number.
    BadMagic,
    /// Unsupported FLG version bits or reserved bits set.
    Unsupported,
    /// Header checksum (HC byte) mismatch.
    BadHeaderChecksum,
    /// Truncated frame.
    Truncated,
    /// A block failed to decompress.
    BadBlock,
    /// A block checksum mismatched.
    BadBlockChecksum,
    /// The content checksum mismatched.
    BadContentChecksum,
    /// A block declares a size beyond the descriptor's maximum.
    BlockTooLarge,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FrameError::BadMagic => "bad LZ4 frame magic",
            FrameError::Unsupported => "unsupported LZ4 frame flags",
            FrameError::BadHeaderChecksum => "frame header checksum mismatch",
            FrameError::Truncated => "truncated LZ4 frame",
            FrameError::BadBlock => "undecodable block",
            FrameError::BadBlockChecksum => "block checksum mismatch",
            FrameError::BadContentChecksum => "content checksum mismatch",
            FrameError::BlockTooLarge => "block exceeds declared maximum",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FrameError {}

/// Smallest standard block-size class (BD code 4..=7) holding `size`.
fn bd_code(size: usize) -> u8 {
    if size <= 64 << 10 {
        4 // 64 KiB
    } else if size <= 256 << 10 {
        5
    } else if size <= 1 << 20 {
        6
    } else {
        7 // 4 MiB
    }
}

fn bd_max(code: u8) -> usize {
    match code {
        4 => 64 << 10,
        5 => 256 << 10,
        6 => 1 << 20,
        _ => 4 << 20,
    }
}

/// Compress `data` into a complete LZ4 frame.
pub fn compress_frame(data: &[u8], opts: &FrameOptions) -> Vec<u8> {
    assert!(
        opts.block_size > 0 && opts.block_size <= 4 << 20,
        "block_size must be in 1..=4MiB"
    );
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.extend_from_slice(&MAGIC.to_le_bytes());

    // FLG: version 01 (bits 7..6), block independence (bit 5),
    // block-checksum (bit 4), content-checksum (bit 2).
    let mut flg = 0b0100_0000u8 | 0b0010_0000;
    if opts.block_checksums {
        flg |= 0b0001_0000;
    }
    if opts.content_checksum {
        flg |= 0b0000_0100;
    }
    let bd = bd_code(opts.block_size) << 4;
    out.push(flg);
    out.push(bd);
    // HC: second byte of xxh32 of the descriptor.
    out.push((xxh32(&[flg, bd], 0) >> 8) as u8);

    let mut content_hash = Xxh32::new(0);
    for chunk in data.chunks(opts.block_size) {
        if opts.content_checksum {
            content_hash.update(chunk);
        }
        let compressed = lz4::compress(chunk);
        let (word, payload): (u32, &[u8]) = if compressed.len() < chunk.len() {
            (compressed.len() as u32, &compressed)
        } else {
            // Uncompressed block: high bit of the size word set.
            ((chunk.len() as u32) | 0x8000_0000, chunk)
        };
        out.extend_from_slice(&word.to_le_bytes());
        out.extend_from_slice(payload);
        if opts.block_checksums {
            out.extend_from_slice(&xxh32(payload, 0).to_le_bytes());
        }
    }
    // EndMark.
    out.extend_from_slice(&0u32.to_le_bytes());
    if opts.content_checksum {
        out.extend_from_slice(&content_hash.digest().to_le_bytes());
    }
    out
}

/// Decompress a complete LZ4 frame, verifying every checksum present.
pub fn decompress_frame(frame: &[u8]) -> Result<Vec<u8>, FrameError> {
    let mut i = 0usize;
    let take = |i: &mut usize, n: usize| -> Result<&[u8], FrameError> {
        if *i + n > frame.len() {
            return Err(FrameError::Truncated);
        }
        let s = &frame[*i..*i + n];
        *i += n;
        Ok(s)
    };

    let magic = u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let flg = take(&mut i, 1)?[0];
    let bd = take(&mut i, 1)?[0];
    if (flg >> 6) != 0b01 {
        return Err(FrameError::Unsupported);
    }
    if flg & 0b0000_0011 != 0 || bd & 0b1000_1111 != 0 {
        return Err(FrameError::Unsupported);
    }
    let content_size_present = flg & 0b0000_1000 != 0;
    let mut descriptor = vec![flg, bd];
    if content_size_present {
        // Not emitted by our encoder; accept and include in the HC.
        descriptor.extend_from_slice(take(&mut i, 8)?);
    }
    let hc = take(&mut i, 1)?[0];
    if hc != (xxh32(&descriptor, 0) >> 8) as u8 {
        return Err(FrameError::BadHeaderChecksum);
    }
    let block_checksums = flg & 0b0001_0000 != 0;
    let content_checksum = flg & 0b0000_0100 != 0;
    let max_block = bd_max((bd >> 4) & 0x07);

    let mut out = Vec::new();
    let mut content_hash = Xxh32::new(0);
    loop {
        let word = u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4 bytes"));
        if word == 0 {
            break; // EndMark
        }
        let uncompressed = word & 0x8000_0000 != 0;
        let len = (word & 0x7FFF_FFFF) as usize;
        if len > lz4::worst_case_len(max_block) {
            return Err(FrameError::BlockTooLarge);
        }
        let payload = take(&mut i, len)?;
        if block_checksums {
            let ck = u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4 bytes"));
            if ck != xxh32(payload, 0) {
                return Err(FrameError::BadBlockChecksum);
            }
        }
        let decoded: Vec<u8> = if uncompressed {
            payload.to_vec()
        } else {
            lz4::decompress(payload, max_block).map_err(|_| FrameError::BadBlock)?
        };
        if decoded.len() > max_block {
            return Err(FrameError::BlockTooLarge);
        }
        if content_checksum {
            content_hash.update(&decoded);
        }
        out.extend_from_slice(&decoded);
    }
    if content_checksum {
        let ck = u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4 bytes"));
        if ck != content_hash.digest() {
            return Err(FrameError::BadContentChecksum);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn text(len: usize) -> Vec<u8> {
        b"heterogeneous streaming pipeline data "
            .iter()
            .cycle()
            .take(len)
            .copied()
            .collect()
    }

    #[test]
    fn roundtrip_default_options() {
        for len in [0usize, 1, 100, 65536, 200_000] {
            let data = text(len);
            let frame = compress_frame(&data, &FrameOptions::default());
            assert_eq!(decompress_frame(&frame).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn roundtrip_all_option_combinations() {
        let data = text(150_000);
        for bs in [4 << 10, 64 << 10, 1 << 20] {
            for bc in [false, true] {
                for cc in [false, true] {
                    let opts = FrameOptions {
                        block_size: bs,
                        block_checksums: bc,
                        content_checksum: cc,
                    };
                    let frame = compress_frame(&data, &opts);
                    assert_eq!(
                        decompress_frame(&frame).unwrap(),
                        data,
                        "bs={bs} bc={bc} cc={cc}"
                    );
                }
            }
        }
    }

    #[test]
    fn incompressible_data_uses_raw_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data: Vec<u8> = (0..100_000).map(|_| rng.gen()).collect();
        let frame = compress_frame(&data, &FrameOptions::default());
        // Frame overhead stays tiny even on random data.
        assert!(frame.len() < data.len() + 32);
        assert_eq!(decompress_frame(&frame).unwrap(), data);
    }

    #[test]
    fn magic_and_header_validated() {
        let data = text(1000);
        let mut frame = compress_frame(&data, &FrameOptions::default());
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decompress_frame(&bad).unwrap_err(), FrameError::BadMagic);
        frame[4] ^= 0x10; // flip block-checksum flag → HC mismatch
        assert_eq!(
            decompress_frame(&frame).unwrap_err(),
            FrameError::BadHeaderChecksum
        );
    }

    #[test]
    fn corruption_detected() {
        let data = text(100_000);
        let opts = FrameOptions {
            block_checksums: true,
            ..FrameOptions::default()
        };
        let frame = compress_frame(&data, &opts);
        // Flip a byte inside the first block payload.
        let mut bad = frame.clone();
        bad[20] ^= 0x01;
        let err = decompress_frame(&bad).unwrap_err();
        assert!(
            matches!(
                err,
                FrameError::BadBlockChecksum | FrameError::BadBlock | FrameError::Truncated
            ),
            "{err:?}"
        );
        // Without block checksums the content checksum still catches it
        // whenever the block happens to decode.
        let frame2 = compress_frame(&data, &FrameOptions::default());
        let mut bad2 = frame2.clone();
        let mid = frame2.len() / 2;
        bad2[mid] ^= 0x01;
        assert!(decompress_frame(&bad2).is_err());
    }

    #[test]
    fn truncation_detected() {
        let data = text(10_000);
        let frame = compress_frame(&data, &FrameOptions::default());
        for cut in [3usize, 8, frame.len() / 2, frame.len() - 1] {
            let err = decompress_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    FrameError::Truncated
                        | FrameError::BadContentChecksum
                        | FrameError::BadBlock
                        | FrameError::BadHeaderChecksum
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn block_size_classes() {
        assert_eq!(bd_code(1), 4);
        assert_eq!(bd_code(64 << 10), 4);
        assert_eq!(bd_code((64 << 10) + 1), 5);
        assert_eq!(bd_code(1 << 20), 6);
        assert_eq!(bd_code(4 << 20), 7);
        for c in 4u8..=7 {
            assert!(bd_max(c) >= 64 << 10);
        }
    }
}

//! Deserialization half of the data model.

use core::fmt::{self, Display};
use core::marker::PhantomData;

/// Error raised by a deserializer.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
    /// A field was present but its value had the wrong shape.
    fn invalid_type(unexp: &str, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid type: {unexp}, expected {exp}"))
    }
    /// A required field was missing.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }
    /// An enum tag did not name a known variant.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }
}

/// What a visitor expected, for error messages.
pub trait Expected {
    /// Describe the expectation (e.g. "a sequence of two integers").
    fn fmt(&self, formatter: &mut fmt::Formatter) -> fmt::Result;
}

impl<'de, V: Visitor<'de>> Expected for V {
    fn fmt(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        Expected::fmt(self, formatter)
    }
}

/// A data structure that can be deserialized from any data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A format-specific deserializer (the driver side of the data model).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Let the format pick the visitor method based on the input shape.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint that an `Option` is expected: `null` → `visit_none`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Walks a deserializer's input, building a value.
pub trait Visitor<'de>: Sized {
    /// The value produced.
    type Value;

    /// Describe what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    /// Input was a boolean.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("boolean", &self))
    }
    /// Input was a signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("integer", &self))
    }
    /// Input was an unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        self.visit_i64(i64::try_from(v).map_err(|_| E::custom("u64 out of i64 range"))?)
    }
    /// Input was a float.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("floating point number", &self))
    }
    /// Input was a string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::invalid_type("string", &self))
    }
    /// Input was a null / unit.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("null", &self))
    }
    /// Input was an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("none", &self))
    }
    /// Input was a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("some", &self))
    }
    /// Input was a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::invalid_type("sequence", &self))
    }
    /// Input was a map / object.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::invalid_type("map", &self))
    }
}

/// Streaming access to a sequence's elements.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Next element, or `None` at the end of the sequence.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
    /// Remaining length, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streaming access to a map's entries.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Next key, or `None` at the end of the map.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>;
    /// Value for the key just returned by `next_key`.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>;
    /// Skip the value for the key just returned (unknown fields).
    fn skip_value(&mut self) -> Result<(), Self::Error>;
}

/// Deserialize seed that just ignores whatever value comes next.
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IgnoredVisitor;
        impl<'de> Visitor<'de> for IgnoredVisitor {
            type Value = IgnoredAny;
            fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                formatter.write_str("anything")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<Self::Value, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<Self::Value, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<Self::Value, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<Self::Value, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<Self::Value, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                deserializer.deserialize_any(IgnoredVisitor)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                while map.next_key::<String>()?.is_some() {
                    map.skip_value()?;
                }
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_any(IgnoredVisitor)
    }
}

struct BoolVisitor;

impl<'de> Visitor<'de> for BoolVisitor {
    type Value = bool;
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a boolean")
    }
    fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
        Ok(v)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(BoolVisitor)
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct IntVisitor;
                impl<'de> Visitor<'de> for IntVisitor {
                    type Value = $t;
                    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                        formatter.write_str(concat!("an integer fitting in ", stringify!($t)))
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v)
                            .map_err(|_| E::custom(format_args!("integer {v} out of range for {}", stringify!($t))))
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v)
                            .map_err(|_| E::custom(format_args!("integer {v} out of range for {}", stringify!($t))))
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        if v.fract() == 0.0 && v >= <$t>::MIN as f64 && v <= <$t>::MAX as f64 {
                            Ok(v as $t)
                        } else {
                            Err(E::custom(format_args!("float {v} is not a {}", stringify!($t))))
                        }
                    }
                }
                deserializer.deserialize_any(IntVisitor)
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! impl_deserialize_float {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct FloatVisitor;
                impl<'de> Visitor<'de> for FloatVisitor {
                    type Value = $t;
                    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                        formatter.write_str("a number")
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                }
                deserializer.deserialize_any(FloatVisitor)
            }
        }
    )*};
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                formatter.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
        }
        deserializer.deserialize_any(StringVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                formatter.write_str("an optional value")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                formatter.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_any(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Visitor<'de>
            for ArrayVisitor<T, N>
        {
            type Value = [T; N];
            fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                write!(formatter, "a sequence of {N} elements")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = [T::default(); N];
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = seq.next_element()?.ok_or_else(|| {
                        Error::custom(format_args!("expected {N} elements, got {i}"))
                    })?;
                }
                if seq.next_element::<IgnoredAny>()?.is_some() {
                    return Err(Error::custom(format_args!("expected exactly {N} elements")));
                }
                Ok(out)
            }
        }
        deserializer.deserialize_any(ArrayVisitor::<T, N>(PhantomData))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal : $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                        write!(formatter, "a tuple of {} elements", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<Acc: SeqAccess<'de>>(self, mut seq: Acc) -> Result<Self::Value, Acc::Error> {
                        $(
                            let $name = seq
                                .next_element()?
                                .ok_or_else(|| Error::custom("tuple too short"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_any(TupleVisitor(PhantomData))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (1: A)
    (2: A, B)
    (3: A, B, C)
    (4: A, B, C, D)
    (5: A, B, C, D, E)
}

//! Isolation measurement harness.
//!
//! The paper's methodology: "Similar to the queuing theory model, we
//! will test each stage in isolation and measure performance in
//! isolation" (§5), then feed the min/avg/max throughputs into the
//! models (Table 2). This harness runs any byte-consuming kernel over
//! repeated chunks and reports exactly that triple.

use std::time::Instant;

use serde::Serialize;

/// Measured throughput triple for one stage, bytes/s of data processed.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StageMeasurement {
    /// Slowest observed per-chunk rate.
    pub min: f64,
    /// Mean rate over all chunks.
    pub avg: f64,
    /// Fastest observed per-chunk rate.
    pub max: f64,
    /// Bytes processed in total.
    pub bytes: u64,
    /// Number of timed chunks.
    pub chunks: usize,
}

impl StageMeasurement {
    /// Rates in MiB/s as `(min, avg, max)` — the paper's Table 2 units.
    pub fn mib_per_s(&self) -> (f64, f64, f64) {
        const MIB: f64 = (1u64 << 20) as f64;
        (self.min / MIB, self.avg / MIB, self.max / MIB)
    }
}

/// Measure `kernel` over `chunks`, timing each invocation. The kernel
/// receives one chunk per call; its return value is a black box (use it
/// to prevent the optimizer from deleting work).
///
/// `warmup` untimed iterations run first (cache/branch warm-up), per
/// standard benchmarking practice.
///
/// # Panics
/// Panics if `chunks` is empty or any chunk is.
pub fn measure_stage<F, R>(chunks: &[&[u8]], warmup: usize, mut kernel: F) -> StageMeasurement
where
    F: FnMut(&[u8]) -> R,
{
    assert!(!chunks.is_empty(), "need at least one chunk");
    assert!(
        chunks.iter().all(|c| !c.is_empty()),
        "chunks must be non-empty"
    );

    for w in 0..warmup {
        std::hint::black_box(kernel(chunks[w % chunks.len()]));
    }

    let mut rates = Vec::with_capacity(chunks.len());
    let mut total_bytes = 0u64;
    let mut total_time = 0.0f64;
    for &chunk in chunks {
        let t0 = Instant::now();
        std::hint::black_box(kernel(chunk));
        let dt = t0.elapsed().as_secs_f64().max(1e-12);
        rates.push(chunk.len() as f64 / dt);
        total_bytes += chunk.len() as u64;
        total_time += dt;
    }
    StageMeasurement {
        min: rates.iter().copied().fold(f64::INFINITY, f64::min),
        avg: total_bytes as f64 / total_time,
        max: rates.iter().copied().fold(0.0, f64::max),
        bytes: total_bytes,
        chunks: chunks.len(),
    }
}

/// Convenience: measure over `reps` repetitions of a single buffer.
pub fn measure_repeated<F, R>(
    data: &[u8],
    reps: usize,
    warmup: usize,
    kernel: F,
) -> StageMeasurement
where
    F: FnMut(&[u8]) -> R,
{
    assert!(reps > 0);
    let chunks: Vec<&[u8]> = std::iter::repeat_n(data, reps).collect();
    measure_stage(&chunks, warmup, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_invariant() {
        let data = vec![0xABu8; 1 << 16];
        let m = measure_repeated(&data, 8, 2, |c| c.iter().map(|&b| b as u64).sum::<u64>());
        assert!(m.min <= m.avg + 1e-9);
        assert!(m.avg <= m.max + 1e-9);
        assert!(m.min > 0.0);
        assert_eq!(m.bytes, 8 << 16);
        assert_eq!(m.chunks, 8);
    }

    #[test]
    fn slower_kernel_measures_slower() {
        let data = vec![1u8; 1 << 14];
        let fast = measure_repeated(&data, 6, 2, |c| c.iter().map(|&b| b as u64).sum::<u64>());
        let slow = measure_repeated(&data, 6, 2, |c| {
            // ~20x more work per byte.
            let mut acc = 0u64;
            for _ in 0..20 {
                acc = acc.wrapping_add(c.iter().map(|&b| b as u64).sum::<u64>());
            }
            acc
        });
        assert!(
            slow.avg < fast.avg,
            "slow {} !< fast {}",
            slow.avg,
            fast.avg
        );
    }

    #[test]
    fn mib_units() {
        let m = StageMeasurement {
            min: 1048576.0,
            avg: 2097152.0,
            max: 4194304.0,
            bytes: 0,
            chunks: 1,
        };
        let (lo, mid, hi) = m.mib_per_s();
        assert_eq!((lo, mid, hi), (1.0, 2.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn empty_chunks_rejected() {
        let _ = measure_stage(&[], 0, |_| ());
    }
}

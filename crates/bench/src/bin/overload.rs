//! E10 artifact: the overload sweep (the paper's §6 future-work
//! direction). Sweeps the offered load across the three §3 regimes and
//! records, per point: the exact backlog bound (diverging at overload),
//! the closed-form heuristic, and the simulator's observations.
//!
//! The sweep itself runs on the `nc-sweep` engine (grid expansion +
//! parallel evaluation with per-worker caches); this bin only formats
//! the surfaces into the stable CSV schemas. Two surfaces are emitted:
//! the stochastic sweep now pushes 1 GiB per point (affordable since
//! the engine keeps only the in-flight input window with tracing off),
//! and `overload_det.csv` re-runs the axis with 16 GiB per point under
//! the deterministic service model with bounded queues, where the
//! cycle-jump fast-forward advances the backpressured steady state in
//! closed form (DESIGN.md §10).

use nc_core::num::Rat;
use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use nc_core::units::mib_per_s;
use nc_streamsim::SimConfig;
use nc_sweep::{Axis, Param, SweepSpec};

fn base_pipeline() -> Pipeline {
    Pipeline::new(
        "overload sweep",
        Source {
            rate: mib_per_s(40.0), // placeholder: the sweep axis sets it
            burst: Rat::int(64 << 10),
        },
        vec![Node::new(
            "kernel",
            NodeKind::Compute,
            StageRates::new(mib_per_s(95.0), mib_per_s(100.0), mib_per_s(105.0)),
            Rat::new(1, 1000),
            Rat::int(64 << 10),
            Rat::int(64 << 10),
        )],
    )
}

fn main() {
    const MIB: f64 = 1048576.0;
    let spec = SweepSpec {
        base: base_pipeline(),
        axes: vec![Axis::linspace(
            Param::SourceRate,
            mib_per_s(40.0),
            mib_per_s(160.0),
            25,
        )],
        horizons: vec![],
        sim: Some(SimConfig {
            seed: 5,
            total_input: 1 << 30,
            source_chunk: Some(64 << 10),
            queue_capacity: None,
            queue_capacities: None,
            service_model: nc_streamsim::ServiceModel::Uniform,
            trace: false,
            fast_forward: true,
            faults: None,
            workers: None,
        }),
    };
    let surface = nc_sweep::run(&spec);

    let mut csv =
        String::from("offered_mib_s,regime,exact_backlog_mib,heuristic_backlog_mib,sim_throughput_mib_s,sim_peak_backlog_mib,sim_delay_max_ms,bottleneck_utilization\n");
    for p in &surface.points {
        let sim = p.sim.as_ref().expect("sweep ran with sim enabled");
        let exact = match p.backlog {
            nc_core::Value::Finite(x) => format!("{:.4}", x.to_f64() / MIB),
            _ => "inf".into(),
        };
        csv.push_str(&format!(
            "{},{:?},{exact},{:.4},{:.2},{:.4},{:.3},{:.3}\n",
            p.coords[0].to_f64() / MIB,
            p.regime,
            p.heuristic_backlog.to_f64() / MIB,
            sim.throughput / MIB,
            sim.peak_backlog / MIB,
            sim.delay_max * 1e3,
            sim.utilization[0],
        ));
    }
    nc_bench::emit("overload_sweep.csv", &csv);

    // Deterministic 16 GiB variant: bounded queues turn the overloaded
    // points into a backpressured periodic steady state, which the
    // cycle-jump fast-forward advances in closed form — so each point
    // costs warmup + drain regardless of the 16 GiB volume.
    let det_spec = SweepSpec {
        base: base_pipeline(),
        axes: vec![Axis::linspace(
            Param::SourceRate,
            mib_per_s(40.0),
            mib_per_s(160.0),
            25,
        )],
        horizons: vec![],
        sim: Some(SimConfig {
            seed: 5,
            total_input: 16 << 30,
            source_chunk: Some(64 << 10),
            queue_capacity: Some(4 << 20),
            queue_capacities: None,
            service_model: nc_streamsim::ServiceModel::Deterministic,
            trace: false,
            fast_forward: true,
            faults: None,
            workers: None,
        }),
    };
    let det_surface = nc_sweep::run(&det_spec);
    let mut det_csv = String::from(
        "offered_mib_s,regime,sim_throughput_mib_s,sim_peak_backlog_mib,sim_delay_max_ms,bottleneck_utilization,events\n",
    );
    for p in &det_surface.points {
        let sim = p.sim.as_ref().expect("sweep ran with sim enabled");
        det_csv.push_str(&format!(
            "{},{:?},{:.2},{:.4},{:.3},{:.3},{}\n",
            p.coords[0].to_f64() / MIB,
            p.regime,
            sim.throughput / MIB,
            sim.peak_backlog / MIB,
            sim.delay_max * 1e3,
            sim.utilization[0],
            sim.events,
        ));
    }
    nc_bench::emit("overload_det.csv", &det_csv);
}

//! Cross-model integration tests: network calculus, queueing theory,
//! and the discrete-event simulator must agree wherever their
//! assumptions overlap — each model checks the others.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use streamcalc::core::num::Rat;
use streamcalc::core::pipeline::{Node, NodeKind, Pipeline, PipelineModel, Source, StageRates};
use streamcalc::core::Regime;
use streamcalc::queueing::{analyze_tandem, Mg1, Mm1, TandemStage};
use streamcalc::streamsim::{simulate, SimConfig, SimResult};

fn single_stage(rate_min: i64, rate_max: i64, source: i64, job: i64) -> Pipeline {
    Pipeline::new(
        "cross",
        Source {
            rate: Rat::int(source),
            burst: Rat::int(job),
        },
        vec![Node::new(
            "stage",
            NodeKind::Compute,
            StageRates::new(
                Rat::int(rate_min),
                Rat::int((rate_min + rate_max) / 2),
                Rat::int(rate_max),
            ),
            Rat::ZERO,
            Rat::int(job),
            Rat::int(job),
        )],
    )
}

#[test]
fn all_three_models_agree_on_the_bottleneck() {
    // Underloaded: throughput = offered rate in every model.
    let p = single_stage(900, 1100, 500, 1000);
    let m = p.build_model();
    assert_eq!(m.regime(), Regime::Underloaded);

    let tandem = analyze_tandem(
        500.0,
        &[TandemStage {
            name: "stage".into(),
            rate: 1000.0,
        }],
        1000.0,
    )
    .unwrap();
    assert_eq!(tandem.roofline, 500.0);

    let sim = simulate(
        &p,
        &SimConfig {
            seed: 3,
            total_input: 1_000_000,
            source_chunk: Some(1000),
            queue_capacity: None,
            queue_capacities: None,
            service_model: nc_streamsim::ServiceModel::Uniform,
            trace: false,
            fast_forward: true,
            faults: None,
            workers: None,
        },
    );
    assert!(
        (sim.throughput - 500.0).abs() / 500.0 < 0.05,
        "{}",
        sim.throughput
    );
    // NC throughput bracket contains both.
    let tb = m.throughput_over(Rat::int(100));
    assert!(tb.lower.to_f64() <= sim.throughput * 1.02);
    assert!(tb.upper.to_f64() >= sim.throughput * 0.98);
}

#[test]
fn mm1_and_mg1_bracket_uniform_service_sim() {
    // A single stage with uniform service, Poisson-ish offered load is
    // approximated by deterministic arrivals in our sim; the M/G/1
    // P-K mean number in system for uniform service must be *below*
    // M/M/1's (less service variability). Cross-check the formulas.
    let lambda = 0.8;
    let (lo, hi) = (0.8, 1.2); // mean service 1.0
    let mm1 = Mm1::new(lambda, 1.0).unwrap();
    let mu1 = Mg1::uniform(lambda, lo, hi).unwrap();
    let md1 = Mg1::deterministic(lambda, 1.0).unwrap();
    assert!(md1.l < mu1.l && mu1.l < mm1.l);
    // All obey Little's law.
    for (l, w) in [(mm1.l, mm1.w), (mu1.l, mu1.w), (md1.l, md1.w)] {
        assert!((l - lambda * w).abs() < 1e-9);
    }
}

#[test]
fn nc_overload_matches_queueing_instability() {
    // R_α > R_β in NC ⟺ ρ > 1 in queueing: both diverge.
    let p = single_stage(900, 1100, 1500, 1000);
    let m = p.build_model();
    assert_eq!(m.regime(), Regime::Overloaded);
    assert!(m.backlog_bound().is_infinite());
    assert!(Mm1::new(1500.0 / 1000.0, 1.0).is_err());
}

#[test]
fn queueing_roofline_equals_nc_avg_bottleneck() {
    // On the BLAST model, the [12] roofline equals the min normalized
    // average rate that nc-core computes.
    let m = streamcalc::apps::blast::isolated_pipeline().build_model();
    let stages: Vec<TandemStage> = m
        .per_node
        .iter()
        .map(|n| TandemStage {
            name: n.name.clone(),
            rate: n.rate_avg.to_f64(),
        })
        .collect();
    let t = analyze_tandem(1e15, &stages, 1048576.0).unwrap();
    assert!((t.roofline - m.bottleneck_rate_avg.to_f64()).abs() < 1.0);
    assert_eq!(t.bottleneck, "seed_match");
}

#[test]
fn des_validates_nc_delay_on_deterministic_stage() {
    // Deterministic service: NC delay bound should be nearly tight.
    let p = single_stage(1000, 1000, 900, 1000);
    let m = p.build_model();
    let sim = simulate(
        &p,
        &SimConfig {
            seed: 1,
            total_input: 500_000,
            source_chunk: Some(1000),
            queue_capacity: None,
            queue_capacities: None,
            service_model: nc_streamsim::ServiceModel::Uniform,
            trace: false,
            fast_forward: true,
            faults: None,
            workers: None,
        },
    );
    let bound = m.delay_bound_concat().to_f64();
    assert!(sim.delay_max <= bound * (1.0 + 1e-9));
    // Tightness: the bound is within 3x of the observed worst case
    // (it covers the full burst; the sim feeds steadily).
    assert!(
        bound <= sim.delay_max * 3.0,
        "bound {bound} vs sim {}",
        sim.delay_max
    );
}

// ---------------------------------------------------------------------
// Three-way containment grid: NC, queueing, and DES on every point of
// a seeded family of pipelines.
// ---------------------------------------------------------------------

const EPS: f64 = 1e-6;

/// The containment ordering every model triple must satisfy on an
/// underloaded point: β-guaranteed rate ≤ simulated throughput ≤
/// α*-side caps (NC upper bracket and the queueing roofline), and the
/// simulated delay/backlog inside the NC bounds.
fn assert_three_way_containment(tag: &str, m: &PipelineModel, sim: &SimResult) {
    // DES inside the NC worst-case envelope.
    let d = m.delay_bound_concat().to_f64();
    let x = m.backlog_bound_concat().to_f64();
    assert!(
        sim.delay_max <= d * (1.0 + EPS) + 1e-9,
        "{tag}: sim delay {} above NC bound {d}",
        sim.delay_max
    );
    assert!(
        sim.peak_backlog <= x * (1.0 + EPS) + 1.0,
        "{tag}: sim backlog {} above NC bound {x}",
        sim.peak_backlog
    );

    // β ≤ sim ≤ α*: the NC throughput bracket over the observed run.
    // The lower guarantee assumes sustained arrivals; a finite run pays
    // fill/drain boundary effects, so it gets the same 2 % band the
    // bottleneck-agreement test uses. The caps are exact.
    let tb = m.throughput_over(Rat::from_f64(sim.makespan.max(1e-9)));
    assert!(
        tb.lower.to_f64() <= sim.throughput * 1.02,
        "{tag}: sim throughput {} below NC guarantee {}",
        sim.throughput,
        tb.lower.to_f64()
    );
    assert!(
        sim.throughput <= tb.upper.to_f64() * (1.0 + EPS),
        "{tag}: sim throughput {} above NC cap {}",
        sim.throughput,
        tb.upper.to_f64()
    );

    // Queueing roofline (built from the model's — possibly fault-
    // derated — average rates) also caps the simulated throughput.
    let stages: Vec<TandemStage> = m
        .per_node
        .iter()
        .map(|n| TandemStage {
            name: n.name.clone(),
            rate: n.rate_avg.to_f64(),
        })
        .collect();
    let offered = match m.arrival.ultimate_slope() {
        streamcalc::core::Value::Finite(r) => r.to_f64(),
        _ => f64::INFINITY,
    };
    // The roofline states sustained rates; the run's initial burst
    // amortizes to at most one source chunk over the makespan.
    let t = analyze_tandem(offered, &stages, 1024.0).expect("valid tandem");
    assert!(
        sim.throughput <= t.roofline * (1.0 + 1e-3),
        "{tag}: sim throughput {} above queueing roofline {}",
        sim.throughput,
        t.roofline
    );
}

#[test]
fn three_model_grid_containment() {
    // Eight seeded points over 1–3 stage pipelines with varying rates,
    // job sizes, and loads. Every point must satisfy the full
    // β ≤ sim ≤ α* ordering across all three models.
    let mut rng = ChaCha8Rng::seed_from_u64(0xC805_5EED);
    for point in 0..8u64 {
        let n_stages = rng.gen_range(1..=3usize);
        let job = 1i64 << rng.gen_range(6..=10); // 64 B .. 1 KiB chunks
        let mut nodes = Vec::with_capacity(n_stages);
        let mut bottleneck = i64::MAX;
        for s in 0..n_stages {
            let rmin = rng.gen_range(20_000..60_000);
            let spread = rng.gen_range(0..20_000);
            bottleneck = bottleneck.min(rmin);
            nodes.push(Node::new(
                format!("s{s}"),
                NodeKind::Compute,
                StageRates::new(
                    Rat::int(rmin),
                    Rat::int(rmin + spread / 2),
                    Rat::int(rmin + spread),
                ),
                Rat::ZERO,
                Rat::int(job),
                Rat::int(job),
            ));
        }
        // Drive at 40–80 % of the guaranteed bottleneck: underloaded in
        // every model, so all bounds are finite.
        let src = (bottleneck as f64 * rng.gen_range(0.4..0.8)) as i64;
        let p = Pipeline::new(
            format!("grid-{point}"),
            Source {
                rate: Rat::int(src),
                burst: Rat::int(job),
            },
            nodes,
        );
        let m = p.build_model();
        assert_eq!(m.regime(), Regime::Underloaded, "point {point}");

        let sim = simulate(
            &p,
            &SimConfig {
                seed: 100 + point,
                total_input: 2_000_000,
                source_chunk: Some(job as u64),
                queue_capacity: None,
                queue_capacities: None,
                service_model: nc_streamsim::ServiceModel::Uniform,
                trace: false,
                fast_forward: true,
                faults: None,
                workers: None,
            },
        );
        assert_three_way_containment(&format!("point {point}"), &m, &sim);
    }
}

#[test]
fn faulted_bitw_three_model_containment() {
    // The degraded-mode §11 scenario: the same three-way ordering must
    // hold between the *degraded* NC model, the *derated* queueing
    // roofline (the model's per-node average rates already carry each
    // fault's long-run rate factor), and the *faulted* simulation.
    let p = streamcalc::apps::bitw::faulted_pipeline();
    let m = p.build_model();
    for seed in [21, 43] {
        let sim = simulate(&p, &streamcalc::apps::bitw::faulted_sim_config(seed));
        assert_three_way_containment(&format!("bitw seed {seed}"), &m, &sim);
    }
}

#[test]
fn faulted_blast_three_model_containment() {
    let p = streamcalc::apps::blast::faulted_pipeline();
    let m = p.build_model();
    let sim = simulate(&p, &streamcalc::apps::blast::faulted_sim_config(31));
    assert_three_way_containment("blast", &m, &sim);
}

#[test]
fn degraded_queueing_roofline_tracks_rate_factor() {
    // Cross-model agreement on the *average*-rate effect of a fault:
    // derating the BLAST GPU stage by 10 % must move the queueing
    // roofline down by exactly the stall/derate long-run factor.
    let clean = streamcalc::apps::blast::deployed_pipeline().build_model();
    let faulted = streamcalc::apps::blast::faulted_pipeline().build_model();
    let ratio = faulted.bottleneck_rate_avg.to_f64() / clean.bottleneck_rate_avg.to_f64();
    assert!((ratio - 0.9).abs() < 1e-9, "avg bottleneck ratio {ratio}");
}

#[test]
#[ignore = "long-horizon nightly variant: CHECK_NIGHTLY=1 scripts/check.sh"]
fn faulted_bitw_containment_long_horizon() {
    // Nightly-scale sweep of the faulted BITW scenario: 8 seeds at 8x
    // the tier-1 input length, so outage windows sampled deep into the
    // run (and many more stall periods) still land inside the degraded
    // bounds.
    let p = streamcalc::apps::bitw::faulted_pipeline();
    let m = p.build_model();
    let total: u64 = 16 << 20;
    let horizon = total as f64 / p.source.rate.to_f64();
    for seed in 0..8u64 {
        let mut cfg = streamcalc::apps::bitw::faulted_sim_config(seed);
        cfg.total_input = total;
        cfg.faults = Some(streamcalc::streamsim::FaultSchedule::from_pipeline(
            &p, seed, horizon,
        ));
        let sim = simulate(&p, &cfg);
        assert_three_way_containment(&format!("long bitw seed {seed}"), &m, &sim);
    }
}

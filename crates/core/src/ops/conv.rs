//! Min-plus convolution `⊗`.
//!
//! `(f ⊗ g)(t) = inf_{0 ≤ s ≤ t} { f(s) + g(t − s) }` is the composition
//! operator of network calculus: the service curve of two systems in
//! tandem is the convolution of their service curves (§4.2 of the
//! paper, "these nodes can be concatenated together to find the overall
//! service curve of the full system").
//!
//! # Algorithm
//!
//! [`min_plus_conv`] dispatches on the operands' shape:
//!
//! * a pure delay `δ_T` shifts the other operand (`O(n)`);
//! * two concave operands reduce to `min(f, g)` after normalising the
//!   values at `0` (Le Boudec & Thiran, Thm 3.1.6) — `O(n + m)`;
//! * two convex operands use the slope-merge closed form: the result
//!   concatenates both operands' segments in ascending slope order
//!   starting from `f(0) + g(0)` — `O(n + m)`;
//! * genuinely mixed curves fall back to the general strategy-envelope
//!   algorithm, with domain-aware pruning of the strategy scan.
//!
//! In the general case, candidate breakpoints of the result lie in the
//! Minkowski sum `{x_i + y_j}` of the operands' breakpoints, *but the
//! result is not affine between candidates*: on each open interval the
//! convolution equals the pointwise minimum of finitely many affine
//! "strategies" (the infimum pinned at a breakpoint of `f`, or at
//! `t − y_j` for a breakpoint of `g`), whose crossings create further
//! kinks. We therefore take the exact [lower envelope](super::envelope)
//! of the strategy lines on every interval. All arithmetic is rational,
//! so the result is exact.
//!
//! The unpruned general algorithm stays available as
//! [`min_plus_conv_general`]; it is the reference oracle the fast paths
//! are property-tested against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::curve::pwl::{Breakpoint, Curve};
use crate::num::{Rat, Value};

use super::envelope::{lower_envelope, Line};

/// Exact min-plus convolution of two wide-sense increasing curves.
///
/// Dispatches to closed forms where the operands' shape allows (pure
/// delays, concave ⊗ concave, convex ⊗ convex) and otherwise runs the
/// general strategy-envelope algorithm with a pruned strategy scan.
/// Always agrees exactly with [`min_plus_conv_general`].
///
/// # Panics
/// Panics (in debug builds) if either operand is not wide-sense
/// increasing.
pub fn min_plus_conv(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_wide_sense_increasing(), "conv operand must increase");
    debug_assert!(g.is_wide_sense_increasing(), "conv operand must increase");

    // Fast path: pure delay δ_T shifts the other operand.
    if let Some(t) = as_pure_delay(f) {
        return g.shift_right(t);
    }
    if let Some(t) = as_pure_delay(g) {
        return f.shift_right(t);
    }
    // Fast path: for concave curves with f(0) = g(0) = 0,
    // f ⊗ g = min(f, g)  (Le Boudec & Thiran, Thm 3.1.6). Non-zero
    // offsets factor out of the infimum:
    // (a + F) ⊗ (b + G) = a + b + (F ⊗ G) = min(f + b, g + a).
    if is_concave(f) && is_concave(g) {
        // Concave curves are finite everywhere, so the offsets are too.
        let f0 = f.at_zero().unwrap_finite();
        let g0 = g.at_zero().unwrap_finite();
        if f0.is_zero() && g0.is_zero() {
            return f.min(g);
        }
        return f.shift_up(g0).min(&g.shift_up(f0));
    }
    // Fast path: convex ⊗ convex has an O(n + m) slope-merge closed form.
    if is_convex(f) && is_convex(g) {
        return conv_convex(f, g);
    }
    conv_general_impl(f, g, true)
}

/// The general strategy-envelope convolution, with no shape dispatch
/// and no strategy pruning.
///
/// This is the reference oracle: slower than [`min_plus_conv`] but
/// correct for every pair of wide-sense increasing operands; the fast
/// paths are property-tested to agree with it exactly.
pub fn min_plus_conv_general(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_wide_sense_increasing(), "conv operand must increase");
    debug_assert!(g.is_wide_sense_increasing(), "conv operand must increase");
    conv_general_impl(f, g, false)
}

/// Sorted, deduplicated Minkowski sums `{x_i + y_j}` of the operands'
/// breakpoint abscissas.
///
/// Built as an n-way merge of the (already sorted) per-row sums, so
/// allocation is proportional to the deduplicated output plus one heap
/// slot per row — on the aligned grids typical of staircase and
/// integer-rate curves the output has `O(n + m)` entries, not `n · m`.
fn minkowski_sums(f: &Curve, g: &Curve) -> Vec<Rat> {
    let fx = f.breakpoints();
    let gx = g.breakpoints();
    let mut heap: BinaryHeap<Reverse<(Rat, usize, usize)>> = BinaryHeap::with_capacity(fx.len());
    for (i, bf) in fx.iter().enumerate() {
        heap.push(Reverse((bf.x + gx[0].x, i, 0)));
    }
    let mut out: Vec<Rat> = Vec::with_capacity(fx.len() + gx.len() - 1);
    while let Some(Reverse((t, i, j))) = heap.pop() {
        if out.last() != Some(&t) {
            out.push(t);
        }
        if j + 1 < gx.len() {
            heap.push(Reverse((fx[i].x + gx[j + 1].x, i, j + 1)));
        }
    }
    out
}

/// Per-operand strategy-pin data, precomputed once per convolution.
struct PinSet {
    /// Breakpoint abscissas (sorted).
    xs: Vec<Rat>,
    /// Pin values: the cheapest one-sided value of the operand at each
    /// breakpoint.
    ks: Vec<Value>,
    /// Running minimum of `k_i − s · x_i`, where `s` is the *other*
    /// operand's ultimate slope. All strategies whose sample points lie
    /// past the other operand's last breakpoint are parallel lines of
    /// slope `s`, so only this minimum survives the lower envelope.
    pref: Vec<Value>,
}

fn pin_set(c: &Curve, other_tail_slope: Option<Rat>) -> PinSet {
    let bps = c.breakpoints();
    let mut xs = Vec::with_capacity(bps.len());
    let mut ks = Vec::with_capacity(bps.len());
    let mut pref = Vec::with_capacity(bps.len());
    let mut run = Value::Infinity;
    for bp in bps {
        let mut k = bp.v;
        if bp.x.is_positive() {
            k = k.min(c.eval_left(bp.x));
        }
        k = k.min(bp.v_right);
        if let (Some(s), Value::Finite(kf)) = (other_tail_slope, k) {
            run = run.min(Value::finite(kf - s * bp.x));
        }
        xs.push(bp.x);
        ks.push(k);
        pref.push(run);
    }
    PinSet { xs, ks, pref }
}

/// Append the strategy lines pinned at `pins`' breakpoints governing
/// the open interval `(a, b)` sampled at `m1 < m2`.
///
/// With `prune` set, strategies whose sample points land past `other`'s
/// last breakpoint are not scanned individually: `other` is in its
/// ultimate piece there, so they are either all `+∞` (infinite tail) or
/// parallel lines collapsed to the single prefix-minimum line.
fn pinned_strategy_lines(
    pins: &PinSet,
    other: &Curve,
    a: Rat,
    m1: Rat,
    m2: Rat,
    prune: bool,
    lines: &mut Vec<Line>,
) {
    let n_le_a = pins.xs.partition_point(|&x| x <= a);
    let mut start = 0;
    if prune {
        let other_last = other.last_breakpoint_x();
        // x_i < m1 − other_last puts both samples on `other`'s final
        // piece. (x_i + other_last is itself a Minkowski candidate, so
        // it cannot fall inside (a, b): the whole interval is covered.)
        let stable = pins.xs[..n_le_a].partition_point(|&x| m1 - x > other_last);
        if stable > 0 {
            start = stable;
            if let Value::Finite(s) = other.ultimate_slope() {
                if let Value::Finite(best) = pins.pref[stable - 1] {
                    let last = &other.breakpoints()[other.len() - 1];
                    // Strategy value: k_i + other(m − x_i)
                    //   = (k_i − s·x_i) + vr_last + s · (m − other_last).
                    let vr_last = last.v_right.unwrap_finite();
                    let v0 = best + vr_last + s * (a - other_last);
                    lines.push(Line { v0, slope: s });
                }
            }
            // Infinite ultimate slope: `other` is +∞ on its tail, so
            // every collapsed strategy is +∞ — nothing to push.
        }
    }
    for i in start..n_le_a {
        let k = pins.ks[i];
        if k.is_infinite() {
            continue;
        }
        let x = pins.xs[i];
        push_line(lines, m1, m2, a, |m| k + other.eval(m - x));
    }
}

/// Shared body of the general algorithm; `prune` enables the
/// stabilised-slope strategy pruning (off for the reference oracle).
fn conv_general_impl(f: &Curve, g: &Curve, prune: bool) -> Curve {
    let ts = minkowski_sums(f, g);
    let tail = |c: &Curve| match c.ultimate_slope() {
        Value::Finite(s) => Some(s),
        _ => None,
    };
    let pins_f = pin_set(f, tail(g));
    let pins_g = pin_set(g, tail(f));

    let mut bps: Vec<Breakpoint> = Vec::with_capacity(ts.len());
    let mut lines: Vec<Line> = Vec::new();
    for (k, &a) in ts.iter().enumerate() {
        let v = conv_at(f, g, a);
        let b = ts.get(k + 1).copied();
        // Two interior sample abscissas used to express each strategy
        // as a line in local coordinates u = t − a.
        let (m1, m2) = match b {
            Some(b) => {
                let d = (b - a) / Rat::int(3);
                (a + d, a + d + d)
            }
            None => (a + Rat::ONE, a + Rat::int(2)),
        };
        lines.clear();
        // Strategies pinned at a breakpoint of f: s ≈ x_i, value
        // K + g(t − x_i) with K the cheapest one-sided value of f at
        // x_i — and symmetrically for g.
        pinned_strategy_lines(&pins_f, g, a, m1, m2, prune, &mut lines);
        pinned_strategy_lines(&pins_g, f, a, m1, m2, prune, &mut lines);
        if lines.is_empty() {
            // No finite strategy: the convolution is +inf on (a, b).
            bps.push(Breakpoint {
                x: a,
                v,
                v_right: Value::Infinity,
                slope: Rat::ZERO,
            });
        } else {
            let env = lower_envelope(&lines, b.map(|b| b - a));
            bps.push(Breakpoint {
                x: a,
                v,
                v_right: Value::finite(env[0].value),
                slope: env[0].slope,
            });
            for piece in &env[1..] {
                bps.push(Breakpoint::cont(
                    a + piece.start,
                    Value::finite(piece.value),
                    piece.slope,
                ));
            }
        }
    }
    Curve::from_breakpoints_unchecked(bps)
}

/// Convex ⊗ convex closed form, `O(n + m)`.
///
/// A convex function's segments appear in ascending slope order, and
/// the convolution of convex functions spends time on the cheapest
/// slopes first: starting from `f(0) + g(0)`, the result concatenates
/// both operands' finite segments merged by ascending slope. An
/// operand's jump to `+∞` simply ends its segment contribution; when
/// both operands end at `+∞` so does the result (at the sum of their
/// finite extents).
fn conv_convex(f: &Curve, g: &Curve) -> Curve {
    // `(length, slope)` per affine piece; `None` length marks the
    // unbounded final piece (absent when the curve ends at +∞).
    fn segments(c: &Curve) -> Vec<(Option<Rat>, Rat)> {
        let bps = c.breakpoints();
        let mut out = Vec::with_capacity(bps.len());
        for (i, bp) in bps.iter().enumerate() {
            if bp.v_right.is_infinite() {
                break;
            }
            match bps.get(i + 1) {
                Some(next) => out.push((Some(next.x - bp.x), bp.slope)),
                None => out.push((None, bp.slope)),
            }
        }
        out
    }
    let sf = segments(f);
    let sg = segments(g);
    let mut x = Rat::ZERO;
    let mut v = (f.at_zero() + g.at_zero()).unwrap_finite();
    let mut bps: Vec<Breakpoint> = Vec::with_capacity(sf.len() + sg.len() + 1);
    let (mut i, mut j) = (0, 0);
    loop {
        let take_f = match (sf.get(i), sg.get(j)) {
            (Some(a), Some(b)) => a.1 <= b.1,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let (len, slope) = if take_f {
            i += 1;
            sf[i - 1]
        } else {
            j += 1;
            sg[j - 1]
        };
        bps.push(Breakpoint::cont(x, Value::finite(v), slope));
        match len {
            // An unbounded segment absorbs everything after it: all
            // remaining segments have equal or steeper slopes and never
            // get reached by the infimum.
            None => return Curve::from_breakpoints_unchecked(bps),
            Some(l) => {
                x += l;
                v += slope * l;
            }
        }
    }
    // Both operands exhausted their finite extent: +∞ from here on.
    bps.push(Breakpoint {
        x,
        v: Value::finite(v),
        v_right: Value::Infinity,
        slope: Rat::ZERO,
    });
    Curve::from_breakpoints_unchecked(bps)
}

/// Exact value of `(f ⊗ g)(t)`.
///
/// The infimum of the piecewise-affine map `s ↦ f(s) + g(t−s)` over
/// `[0, t]` is reached at a breakpoint of the map or as a one-sided
/// limit at one; all such candidates lie on the grid
/// `{0, t} ∪ {x_i} ∪ {t − y_j}`. The minimum needs neither ordering nor
/// deduplication, so the candidates are probed directly without
/// materialising the grid.
pub fn conv_at(f: &Curve, g: &Curve, t: Rat) -> Value {
    debug_assert!(!t.is_negative());
    let mut best = Value::Infinity;
    let mut probe = |s: Rat| {
        let u = t - s;
        // Value at the grid point itself.
        best = best.min(f.eval(s) + g.eval(u));
        // Limit approaching from the right (s ↓): f(s⁺) + g((t−s)⁻).
        if s < t {
            best = best.min(f.eval_right(s) + g.eval_left(u));
        }
        // Limit approaching from the left (s ↑): f(s⁻) + g((t−s)⁺).
        if s.is_positive() {
            best = best.min(f.eval_left(s) + g.eval_right(u));
        }
    };
    probe(Rat::ZERO);
    probe(t);
    for bf in f.breakpoints() {
        if bf.x > t {
            break;
        }
        probe(bf.x);
    }
    for bg in g.breakpoints() {
        let s = t - bg.x;
        if s.is_negative() {
            break;
        }
        probe(s);
    }
    best
}

/// Evaluate `strategy` at the two interior samples; if finite at both,
/// append the interpolating line (in local coordinates relative to `a`).
pub(super) fn push_line(
    lines: &mut Vec<Line>,
    m1: Rat,
    m2: Rat,
    a: Rat,
    strategy: impl Fn(Rat) -> Value,
) {
    let (w1, w2) = (strategy(m1), strategy(m2));
    if let (Value::Finite(w1), Value::Finite(w2)) = (w1, w2) {
        let slope = (w2 - w1) / (m2 - m1);
        let v0 = w1 - slope * (m1 - a);
        lines.push(Line { v0, slope });
    }
}

/// Detects curves that are exactly a pure delay `δ_T`.
pub(crate) fn as_pure_delay(c: &Curve) -> Option<Rat> {
    let bps = c.breakpoints();
    match bps {
        [only] => {
            if only.v == Value::ZERO && only.v_right == Value::Infinity {
                Some(Rat::ZERO)
            } else {
                None
            }
        }
        [first, last] => {
            let zero_plateau =
                first.v == Value::ZERO && first.v_right == Value::ZERO && first.slope.is_zero();
            if zero_plateau && last.v == Value::ZERO && last.v_right == Value::Infinity {
                Some(last.x)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// `true` iff the curve is concave on `(0, ∞)` (an initial burst at
/// `t = 0` is allowed — the leaky bucket counts as concave).
pub(crate) fn is_concave(c: &Curve) -> bool {
    if !c.is_finite_everywhere() {
        return false;
    }
    let bps = c.breakpoints();
    let mut prev_slope: Option<Rat> = None;
    for (i, bp) in bps.iter().enumerate() {
        // Jumps beyond t = 0 break concavity.
        if i > 0 && (bp.v != bp.v_right || c.eval_left(bp.x) != bp.v) {
            return false;
        }
        if let Some(p) = prev_slope {
            if bp.slope > p {
                return false;
            }
        }
        prev_slope = Some(bp.slope);
    }
    true
}

/// `true` iff the curve is convex on its finite domain: continuous with
/// non-decreasing slopes. A final jump to `+∞` is allowed (`δ_T` and
/// truncated service curves are convex); any other jump is not.
pub(crate) fn is_convex(c: &Curve) -> bool {
    let bps = c.breakpoints();
    if bps[0].v.is_infinite() {
        // The +∞-everywhere curve; route it through the general path.
        return false;
    }
    let mut prev_slope: Option<Rat> = None;
    for (i, bp) in bps.iter().enumerate() {
        if i > 0 && c.eval_left(bp.x) != bp.v {
            return false;
        }
        if bp.v_right.is_infinite() {
            // Valid representation puts the jump to +∞ last.
            return true;
        }
        if bp.v != bp.v_right {
            return false;
        }
        if let Some(p) = prev_slope {
            if bp.slope < p {
                return false;
            }
        }
        prev_slope = Some(bp.slope);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    /// Brute-force numeric check helper: exact value must not exceed
    /// any sampled inner value, and must be attained up to grid effects.
    fn check_against_sampling(f: &Curve, g: &Curve, c: &Curve, t_max: i128, denom: i128) {
        for num in 0..(t_max * denom) {
            let t = rat(num, denom);
            let exact = conv_at(f, g, t);
            assert_eq!(c.eval(t), exact, "curve disagrees with conv_at at {t:?}");
            let mut brute = Value::Infinity;
            for k in 0..=96 {
                let s = t * rat(k, 96);
                brute = brute.min(f.eval(s) + g.eval(t - s));
            }
            assert!(exact <= brute, "inf exceeded sample at t={t:?}");
        }
    }

    /// Every public entry point must agree with the reference oracle.
    fn check_matches_general(f: &Curve, g: &Curve) -> Curve {
        let fast = min_plus_conv(f, g);
        let general = min_plus_conv_general(f, g);
        assert_eq!(fast, general, "fast path disagrees with oracle");
        fast
    }

    #[test]
    fn delta_is_identity() {
        let f = lb(2, 5);
        let c = check_matches_general(&f, &shapes::delta(Rat::ZERO));
        assert_eq!(c, f);
        let c = check_matches_general(&shapes::delta(Rat::ZERO), &f);
        assert_eq!(c, f);
    }

    #[test]
    fn delta_shifts() {
        let f = rl(3, 1);
        let c = check_matches_general(&f, &shapes::delta(Rat::int(2)));
        assert_eq!(c, rl(3, 3));
    }

    #[test]
    fn rate_latency_composition() {
        // RL(R1,T1) ⊗ RL(R2,T2) = RL(min(R1,R2), T1+T2).
        let c = check_matches_general(&rl(3, 2), &rl(5, 1));
        assert_eq!(c, rl(3, 3));
        let c = check_matches_general(&rl(5, 1), &rl(3, 2));
        assert_eq!(c, rl(3, 3));
    }

    #[test]
    fn concave_conv_is_min() {
        let a = lb(2, 5);
        let b = lb(1, 9);
        let c = check_matches_general(&a, &b);
        assert_eq!(c, a.min(&b));
    }

    #[test]
    fn concave_conv_with_offsets() {
        // Offsets at 0 factor out: (a + F) ⊗ (b + G) = a + b + F ⊗ G.
        let f = lb(2, 5).shift_up(Rat::int(3));
        let g = lb(1, 9).shift_up(Rat::int(2));
        let c = check_matches_general(&f, &g);
        assert_eq!(c.eval(Rat::ZERO), Value::from(5));
        check_against_sampling(&f, &g, &c, 8, 2);
    }

    #[test]
    fn convex_conv_slope_merge() {
        // Two convex curves with interleaving slopes.
        let f = shapes::rate_latency(Rat::ONE, Rat::ZERO).max(&rl(4, 3)); // slopes 1 then 4
        let g = rl(2, 1).max(&rl(6, 5)); // slopes 0, 2, 6
        assert!(is_convex(&f));
        assert!(is_convex(&g));
        let c = check_matches_general(&f, &g);
        assert!(c.is_wide_sense_increasing());
        check_against_sampling(&f, &g, &c, 14, 2);
    }

    #[test]
    fn convex_conv_with_truncation() {
        // A convex curve ending at +∞ convolved with an unbounded one.
        let trunc = shapes::delta(Rat::int(2)).max(&rl(1, 0)); // t up to 2, then +∞
        assert!(is_convex(&trunc));
        let g = rl(3, 1);
        let c = check_matches_general(&trunc, &g);
        check_against_sampling(&trunc, &g, &c, 8, 2);
        // Two truncated curves: finite exactly up to the summed extents.
        let trunc2 = shapes::delta(Rat::int(1)).max(&rl(2, 0));
        let c2 = check_matches_general(&trunc, &trunc2);
        assert!(c2.eval(Rat::int(3)).is_finite());
        assert_eq!(c2.eval(rat(7, 2)), Value::Infinity);
        check_against_sampling(&trunc, &trunc2, &c2, 6, 2);
    }

    #[test]
    fn lb_conv_rl_exact_shape() {
        // α ⊗ β for α = LB(2, 5), β = RL(3, 4):
        // zero until 4, then min(3(t−4), 5 + 2(t−4)) with a kink at t=9
        // where the strategies cross — a breakpoint *outside* the
        // Minkowski sum of the operand breakpoints.
        let a = lb(2, 5);
        let b = rl(3, 4);
        let c = check_matches_general(&a, &b);
        assert_eq!(c.eval(Rat::int(2)), Value::ZERO);
        assert_eq!(c.eval(Rat::int(4)), Value::ZERO);
        assert_eq!(c.eval_right(Rat::int(4)), Value::ZERO);
        assert_eq!(c.eval(Rat::int(6)), Value::from(6));
        assert_eq!(c.eval(Rat::int(9)), Value::from(15));
        assert_eq!(c.eval(Rat::int(14)), Value::from(25));
        assert!(c.breakpoints().iter().any(|bp| bp.x == Rat::int(9)));
        assert!(c.is_wide_sense_increasing());
        check_against_sampling(&a, &b, &c, 12, 4);
    }

    #[test]
    fn conv_commutative_on_mixed_curves() {
        let a = lb(2, 5).min(&shapes::constant_rate(Rat::int(7)));
        let b = rl(3, 4).add(&rl(1, 1));
        let ab = check_matches_general(&a, &b);
        let ba = check_matches_general(&b, &a);
        assert_eq!(ab, ba);
        check_against_sampling(&a, &b, &ab, 10, 3);
    }

    #[test]
    fn conv_associative() {
        let a = lb(2, 5);
        let b = rl(3, 4);
        let c = rl(6, 1);
        let l = min_plus_conv(&min_plus_conv(&a, &b), &c);
        let r = min_plus_conv(&a, &min_plus_conv(&b, &c));
        assert_eq!(l, r);
    }

    #[test]
    fn staircase_conv_rate_latency() {
        let s = shapes::truncated_staircase(Rat::int(4), Rat::int(2), 4);
        let b = rl(2, 1);
        let c = check_matches_general(&s, &b);
        assert!(c.is_wide_sense_increasing());
        check_against_sampling(&s, &b, &c, 12, 2);
    }

    #[test]
    fn conv_with_positive_at_zero() {
        // f(0) > 0 shifts the whole result up.
        let f = lb(1, 2).shift_up(Rat::int(3));
        let g = rl(2, 1);
        let c = check_matches_general(&f, &g);
        assert_eq!(c.eval(Rat::ZERO), Value::from(3));
        check_against_sampling(&f, &g, &c, 8, 2);
    }

    #[test]
    fn conv_delayed_operands() {
        // Two delta-containing curves: δ_1 min LB vs δ_2 min RL shapes.
        let f = shapes::delta(Rat::int(1)).min(&lb(3, 7));
        let g = shapes::delta(Rat::int(2)).min(&rl(5, 1));
        let c = check_matches_general(&f, &g);
        assert!(c.is_wide_sense_increasing());
        check_against_sampling(&f, &g, &c, 10, 2);
    }

    #[test]
    fn detects_pure_delay() {
        assert_eq!(
            as_pure_delay(&shapes::delta(Rat::int(3))),
            Some(Rat::int(3))
        );
        assert_eq!(as_pure_delay(&shapes::delta(Rat::ZERO)), Some(Rat::ZERO));
        assert_eq!(as_pure_delay(&lb(1, 1)), None);
        assert_eq!(as_pure_delay(&rl(1, 1)), None);
    }

    #[test]
    fn concavity_detection() {
        assert!(is_concave(&lb(2, 5)));
        assert!(is_concave(
            &lb(2, 5).min(&shapes::constant_rate(Rat::int(7)))
        ));
        assert!(!is_concave(&rl(3, 1))); // convex, not concave
        assert!(is_concave(&shapes::constant_rate(Rat::int(3)))); // affine: both
        assert!(!is_concave(&shapes::delta(Rat::int(1))));
        assert!(!is_concave(&shapes::truncated_staircase(
            Rat::ONE,
            Rat::ONE,
            2
        )));
    }

    #[test]
    fn convexity_detection() {
        assert!(is_convex(&rl(3, 1)));
        assert!(is_convex(&shapes::constant_rate(Rat::int(3)))); // affine: both
        assert!(is_convex(&shapes::delta(Rat::int(1)))); // handled by delay path first
        assert!(is_convex(&rl(1, 0).max(&rl(4, 3))));
        assert!(!is_convex(&lb(2, 5))); // burst at 0 is not convex
        assert!(!is_convex(
            &lb(2, 5).min(&shapes::constant_rate(Rat::int(7)))
        ));
        assert!(!is_convex(&shapes::truncated_staircase(
            Rat::ONE,
            Rat::ONE,
            2
        )));
    }

    #[test]
    fn minkowski_sums_dedup_aligned_grids() {
        let s = shapes::truncated_staircase(Rat::int(4), Rat::int(2), 6);
        let sums = minkowski_sums(&s, &s);
        // Aligned staircases collide heavily: output is O(n + m).
        assert!(sums.len() <= 2 * s.len());
        let mut sorted = sums.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sums, sorted, "sums must come out sorted and deduped");
    }
}

//! Exact integer-tick engine for `ServiceModel::Deterministic`, with
//! cycle-jump fast-forward.
//!
//! Deterministic pipelines reach a *periodic steady state*: after a
//! warmup, the world repeats the same few events with a fixed period,
//! shifted in time and cumulative volume. This engine exploits that to
//! make simulation cost O(warmup + period + drain) — independent of
//! `total_input` — instead of O(input bytes):
//!
//! 1. **Integer ticks.** All model arithmetic runs on `u64` ticks of
//!    2⁻⁴⁰ s (≈ 0.9 ps; the `u64` range covers ~194 days of simulated
//!    time). Service times and the source interval are quantized once
//!    at setup; from then on every timestamp, every statistic, and
//!    every queue integral is exact integer arithmetic. This is what
//!    makes fast-forward *provably* lossless: advancing `k` cycles by
//!    adding `k·Δ` to integer counters is bit-identical to stepping
//!    them `k` times, which is false for repeated f64 addition.
//! 2. **Fingerprint recurrence.** After each sink delivery (between
//!    events — never mid-cascade) the engine fingerprints everything
//!    the future depends on *except* absolute time and cumulative
//!    totals: queue depths, busy/started flags, pending outputs, the
//!    time-to-fire of every armed event, the source state, the
//!    in-flight stairstep window relative to now, and the relative arm
//!    order (tie-break order) of pending events. The fingerprint is a
//!    sufficient statistic: two states with equal fingerprints and
//!    enough input remaining evolve identically modulo a time/volume
//!    shift (see `DESIGN.md` §10 for the argument).
//! 3. **Closed-form jump.** When a fingerprint recurs after period `Δt`
//!    with per-cycle deltas (volume, jobs, busy ticks, delay sum,
//!    events, …) and the extrema (peaks, delay min/max) already stable,
//!    the engine advances `k = ⌊(remaining − Δrem − chunk)/Δrem⌋`
//!    cycles at once: every counter gains `k·Δ`, every pending event
//!    and stairstep entry shifts by `k·Δt`, and exact event processing
//!    resumes for the drain tail (including partial final chunks).
//!
//! With `fast_forward: false` the same engine runs every event; the
//! `prop_engine_equiv` property test asserts the two paths produce
//! bit-identical [`SimResult`]s, bounded queues and partial residuals
//! included. Tracing (`trace: true`) disables jumping — skipped cycles
//! cannot emit trace points — but still runs on integer ticks.
//!
//! Divergent regimes (an overloaded stage with unbounded queues) never
//! recur — some queue depth grows every cycle — so the engine steps
//! them exactly, capping its fingerprint table rather than searching
//! forever. Bounded (backpressured) overload *does* recur and jumps.
//!
//! Relative to the f64 stochastic engine run with constant service
//! times, results differ only by the one-time 2⁻⁴⁰ s quantization of
//! each interval (≈ 1e-12 relative); unit tests pin this tolerance.

use std::collections::HashMap;

use nc_core::pipeline::Pipeline;
use nc_des::SlotAgenda;

use crate::config::{derive_params, NodeParams, SimConfig};
use crate::engine::{queue_caps, steady_slope};
use crate::faults::{FaultRt, FaultRtTicks};
use crate::result::SimResult;
use crate::ring::StepRing;

/// Ticks per second: 2⁴⁰ (exact in f64).
const TICK_HZ: f64 = (1u64 << 40) as f64;

/// Agenda slot of the source; node `i` finishes on slot `i + 1`.
const SRC: usize = 0;

/// Sentinel for "absent" optional values inside fingerprints.
const NONE64: u64 = u64::MAX;

/// Fingerprint table bound: beyond this many distinct states the run is
/// treated as non-recurrent (cleared and retried, then abandoned).
const FP_CAP: usize = 4096;
const FP_MAX_CLEARS: u32 = 8;

/// Quantize a duration/timestamp in seconds to ticks.
fn ticks(s: f64) -> u64 {
    debug_assert!(s >= 0.0);
    (s * TICK_HZ).round() as u64
}

/// Ticks back to seconds (exact division by a power of two).
fn secs(t: u64) -> f64 {
    t as f64 / TICK_HZ
}

fn gcd128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Per-node constants in simulator units.
struct DetNode {
    job_in: u64,
    job_out: u64,
    /// Service time per job, ticks (≥ 1).
    exec: u64,
    /// One-time startup latency, ticks.
    startup: u64,
}

/// Absolute counters captured at a fingerprint hit; the difference
/// between two captures of the *same* fingerprint is the per-cycle
/// delta vector applied in closed form by the jump.
#[derive(Clone)]
struct Snap {
    now: u64,
    src_remaining: u64,
    cum_in: u64,
    out_local: u64,
    events: u64,
    jobs_done: Vec<u64>,
    busy_ticks: Vec<u64>,
    q_integral: Vec<u128>,
    q_peak: Vec<u64>,
    d_n: u64,
    d_sum: u128,
    d_min: u64,
    d_max: u64,
    inflight_max: i128,
}

struct Det {
    nodes: Vec<DetNode>,
    // Queues, struct-of-arrays: local byte level, capacity, running
    // peak, occupancy integral in byte·ticks, and last-change tick.
    q_level: Vec<u64>,
    q_cap: Vec<Option<u64>>,
    q_peak: Vec<u64>,
    q_integral: Vec<u128>,
    q_last: Vec<u64>,

    busy: Vec<bool>,
    started: Vec<bool>,
    busy_ticks: Vec<u64>,
    jobs_done: Vec<u64>,
    pending_out: Vec<Option<u64>>,

    src_remaining: u64,
    src_chunk: u64,
    /// Emission interval, ticks (≥ 1).
    src_interval: u64,
    src_blocked: bool,

    /// Sink normalization as an exact reduced rational: local output
    /// bytes × `sn_num / sn_den` = input-referred bytes.
    sn_num: u128,
    sn_den: u128,
    /// Input-referred bytes emitted by the source (node-0 local).
    cum_in: u64,
    /// Local bytes delivered by the last node.
    out_local: u64,
    /// Data in system, as an exact numerator over `sn_den`:
    /// `cum_in·sn_den − out_local·sn_num`.
    inflight: i128,
    inflight_max: i128,

    // Delay tally, integer ticks.
    d_n: u64,
    d_sum: u128,
    d_min: u64,
    d_max: u64,

    /// Input stairstep `(tick, cum_in)`, pruned at the delay cursor
    /// when not tracing.
    steps: StepRing<(u64, u64)>,
    cursor: usize,

    trace: bool,
    trace_out: Vec<(f64, f64)>,
    t_last_out: u64,

    agenda: SlotAgenda<u64>,
    now: u64,
    events: u64,
    /// Set by `deliver_to_sink`; the main loop fingerprints only at
    /// these between-event boundaries.
    delivered: bool,
    ff: bool,
    ff_done: bool,

    // Fault injection (integer-tick mirror of `crate::engine`'s).
    faults: Option<FaultRtTicks>,
    /// First tick after which no fault window can apply (`u64::MAX`
    /// when a periodic stall recurs forever). Fast-forward only engages
    /// at `now ≥ fault_horizon`: beyond it the evolution is time-shift
    /// invariant again, so fingerprint recurrences stay sound.
    fault_horizon: u64,
    /// Input-referred bytes dropped, as an exact numerator over
    /// `sn_den` (which is scaled to the lcm of all drop quanta at
    /// setup, so every drop is integral).
    dropped_num: u128,
    /// Per-stage input-referred quantum of one dropped job, over
    /// `sn_den`.
    drop_amt: Vec<u128>,
    dropped_jobs: u64,
    retries: u64,
    cur_retry: Vec<u32>,
}

/// Run the deterministic pipeline on the integer-tick engine.
pub(crate) fn simulate_det(pipeline: &Pipeline, config: &SimConfig) -> SimResult {
    pipeline
        .validate()
        .unwrap_or_else(|e| panic!("simulate: invalid pipeline: {e}"));
    let mut params = derive_params(pipeline);
    let n = params.len();
    let faults_rt = config.faults.as_ref().and_then(|fs| {
        fs.validate(n)
            .unwrap_or_else(|e| panic!("simulate: invalid fault schedule: {e}"));
        FaultRt::build(fs, n)
    });
    if let Some(fr) = &faults_rt {
        fr.apply_derates(&mut params);
    }

    let src_chunk = config.source_chunk.unwrap_or(params[0].job_in).max(1);
    let src_rate = pipeline.source.rate.to_f64();
    assert!(src_rate > 0.0);
    let q_cap = queue_caps(config, &params, src_chunk);

    let nodes: Vec<DetNode> = params
        .iter()
        .map(|p| DetNode {
            job_in: p.job_in,
            job_out: p.job_out,
            exec: ticks(p.exec_avg).max(1),
            startup: ticks(p.startup),
        })
        .collect();
    let (mut sn_num, mut sn_den) = (1u128, 1u128);
    for nd in &nodes {
        sn_num *= nd.job_in as u128;
        sn_den *= nd.job_out as u128;
        let g = gcd128(sn_num, sn_den);
        sn_num /= g;
        sn_den /= g;
    }

    let faults = faults_rt.as_ref().map(|fr| fr.to_ticks(ticks));
    let fault_horizon = faults.as_ref().map_or(0, |ft| ft.horizon);
    // Drop-policy accounting: one dropped job at stage `i` removes
    // `job_in[i] · norm[i]` input-referred bytes — a rational quantum.
    // Scale the shared denominator to the lcm of `sn_den` and every
    // drop stage's quantum denominator so all in-flight/delay levels
    // stay exact integers. Without drops this leaves `sn_num/sn_den`
    // untouched (the fault-free arithmetic, bit for bit).
    let mut drop_amt = vec![0u128; n];
    if let Some(ft) = &faults {
        if ft.any_drops() {
            // quantum_i = job_in[i] · ∏_{j<i} job_in[j]/job_out[j].
            let (mut nn, mut dd) = (1u128, 1u128);
            let quanta: Vec<(u128, u128)> = nodes
                .iter()
                .map(|nd| {
                    let qn = nd.job_in as u128 * nn;
                    let g = gcd128(qn, dd);
                    let q = (qn / g, dd / g);
                    nn *= nd.job_in as u128;
                    dd *= nd.job_out as u128;
                    let g = gcd128(nn, dd);
                    nn /= g;
                    dd /= g;
                    q
                })
                .collect();
            let mut den = sn_den;
            for (i, &(_, qd)) in quanta.iter().enumerate() {
                if ft.drops(i) {
                    den = den / gcd128(den, qd) * qd;
                }
            }
            sn_num *= den / sn_den;
            sn_den = den;
            for (i, &(qn, qd)) in quanta.iter().enumerate() {
                if ft.drops(i) {
                    drop_amt[i] = qn * (den / qd);
                }
            }
        }
    }

    let mut w = Det {
        nodes,
        q_level: vec![0; n],
        q_cap,
        q_peak: vec![0; n],
        q_integral: vec![0; n],
        q_last: vec![0; n],
        busy: vec![false; n],
        started: vec![false; n],
        busy_ticks: vec![0; n],
        jobs_done: vec![0; n],
        pending_out: vec![None; n],
        src_remaining: config.total_input,
        src_chunk,
        src_interval: ticks(src_chunk as f64 / src_rate).max(1),
        src_blocked: false,
        sn_num,
        sn_den,
        cum_in: 0,
        out_local: 0,
        inflight: 0,
        inflight_max: 0,
        d_n: 0,
        d_sum: 0,
        d_min: u64::MAX,
        d_max: 0,
        steps: StepRing::new(),
        cursor: 0,
        trace: config.trace,
        trace_out: Vec::new(),
        t_last_out: 0,
        agenda: SlotAgenda::new(n + 1),
        now: 0,
        events: 0,
        delivered: false,
        ff: config.fast_forward,
        ff_done: false,
        faults,
        fault_horizon,
        dropped_num: 0,
        drop_amt,
        dropped_jobs: 0,
        retries: 0,
        cur_retry: vec![0u32; n],
    };

    let mut fp_map: HashMap<Vec<u64>, Snap> = HashMap::new();
    let mut fp_buf: Vec<u64> = Vec::new();
    let mut fp_clears = 0u32;

    // Mirror of the stochastic engines' initial
    // `schedule_at(ZERO, source_emit)`: consumes sequence number 0.
    w.agenda.arm(SRC, 0);
    while let Some((slot, t)) = w.agenda.pop() {
        w.now = t;
        w.events += 1;
        w.delivered = false;
        if slot == SRC {
            w.source_emit();
        } else {
            w.finish(slot - 1);
        }
        if w.delivered && w.ff && !w.ff_done && !w.trace && w.now >= w.fault_horizon {
            w.try_jump(&mut fp_map, &mut fp_buf, &mut fp_clears);
        }
    }

    assemble(&w, &params)
}

impl Det {
    fn n(&self) -> usize {
        self.nodes.len()
    }

    // Queue primitives (ByteQueue's semantics on integer ticks).

    fn q_touch(&mut self, i: usize) {
        let dt = self.now - self.q_last[i];
        self.q_integral[i] += self.q_level[i] as u128 * dt as u128;
        self.q_last[i] = self.now;
    }

    fn q_can_put(&self, i: usize, bytes: u64) -> bool {
        self.q_cap[i].is_none_or(|c| self.q_level[i] + bytes <= c)
    }

    fn q_put(&mut self, i: usize, bytes: u64) {
        self.q_touch(i);
        self.q_level[i] += bytes;
        if self.q_level[i] > self.q_peak[i] {
            self.q_peak[i] = self.q_level[i];
        }
    }

    fn q_get(&mut self, i: usize, bytes: u64) {
        debug_assert!(self.q_level[i] >= bytes);
        self.q_touch(i);
        self.q_level[i] -= bytes;
    }

    // The event protocol — a tick-for-tick mirror of the stochastic
    // engine's (see `crate::engine` for the wake-protocol rationale).

    fn source_emit(&mut self) {
        if self.src_remaining == 0 {
            return;
        }
        let chunk = self.src_chunk.min(self.src_remaining);
        if !self.q_can_put(0, chunk) {
            self.src_blocked = true;
            return;
        }
        self.q_put(0, chunk);
        self.src_remaining -= chunk;
        self.cum_in += chunk;
        self.inflight += chunk as i128 * self.sn_den as i128;
        if self.inflight > self.inflight_max {
            self.inflight_max = self.inflight;
        }
        self.steps.push((self.now, self.cum_in));
        if self.src_remaining > 0 {
            let at = self.now + self.src_interval;
            self.agenda.arm(SRC, at);
        }
        self.try_start(0);
    }

    fn try_start(&mut self, i: usize) {
        // Drop-policy outage: jobs that would start now are consumed
        // and discarded (mirrors `crate::engine::World::try_start`).
        while let Some(ft) = &self.faults {
            if !(ft.drops(i) && ft.in_outage(i, self.now)) {
                break;
            }
            let job_in = self.nodes[i].job_in;
            if self.busy[i] || self.pending_out[i].is_some() || self.q_level[i] < job_in {
                break;
            }
            self.q_get(i, job_in);
            self.dropped_jobs += 1;
            self.dropped_num += self.drop_amt[i];
            self.inflight -= self.drop_amt[i] as i128;
            if i == 0 {
                self.resume_source();
            } else {
                self.try_deliver(i - 1);
            }
        }
        let job_in = self.nodes[i].job_in;
        if self.busy[i] || self.pending_out[i].is_some() || self.q_level[i] < job_in {
            return;
        }
        self.q_get(i, job_in);
        self.busy[i] = true;
        let startup = if self.started[i] {
            0
        } else {
            self.started[i] = true;
            self.nodes[i].startup
        };
        let exec = self.nodes[i].exec;
        self.busy_ticks[i] += exec;
        let span = match &self.faults {
            None => startup + exec,
            Some(ft) => ft.extend(i, self.now, startup + exec),
        };
        self.agenda.arm(i + 1, self.now + span);
        if i == 0 {
            self.resume_source();
        } else {
            self.try_deliver(i - 1);
        }
    }

    fn try_deliver(&mut self, i: usize) {
        let Some(bytes) = self.pending_out[i] else {
            return;
        };
        if i + 1 == self.n() {
            self.deliver_to_sink(bytes);
            self.pending_out[i] = None;
            self.try_start(i);
        } else if self.q_can_put(i + 1, bytes) {
            self.q_put(i + 1, bytes);
            self.pending_out[i] = None;
            self.try_start(i);
            self.try_start(i + 1);
        }
    }

    fn resume_source(&mut self) {
        if self.src_blocked && self.q_can_put(0, self.src_chunk) {
            self.src_blocked = false;
            self.source_emit();
        }
    }

    /// Retry-policy outage check at completion time (mirrors
    /// `crate::engine::World::try_retry`, on ticks).
    fn try_retry(&mut self, i: usize) -> bool {
        let Some(ft) = &self.faults else { return false };
        let Some((base, cap)) = ft.retry_params(i) else {
            return false;
        };
        if !ft.in_outage(i, self.now) {
            self.cur_retry[i] = 0;
            return false;
        }
        let k = self.cur_retry[i].min(30);
        let backoff = base.saturating_mul(1u64 << k).min(cap);
        self.cur_retry[i] = self.cur_retry[i].saturating_add(1);
        self.retries += 1;
        let exec = self.nodes[i].exec;
        self.busy_ticks[i] += exec;
        let span = backoff + ft.extend(i, self.now + backoff, exec);
        self.agenda.arm(i + 1, self.now + span);
        true
    }

    fn finish(&mut self, i: usize) {
        debug_assert!(self.busy[i]);
        debug_assert!(self.pending_out[i].is_none());
        if self.try_retry(i) {
            return;
        }
        self.busy[i] = false;
        self.jobs_done[i] += 1;
        self.pending_out[i] = Some(self.nodes[i].job_out);
        self.try_deliver(i);
    }

    fn deliver_to_sink(&mut self, local_bytes: u64) {
        self.out_local += local_bytes;
        self.inflight -= local_bytes as i128 * self.sn_num as i128;
        self.t_last_out = self.now;

        // Virtual delay: when did this cumulative level enter the
        // system? Levels compare exactly as numerators over `sn_den`.
        // Dropped data "exited" too (the `+ 0` is exact when nothing
        // dropped).
        let level = (self.out_local as u128 * self.sn_num + self.dropped_num)
            .min(self.cum_in as u128 * self.sn_den);
        debug_assert!(!self.steps.is_empty());
        while self.cursor + 1 < self.steps.len()
            && (self.steps.get(self.cursor).1 as u128 * self.sn_den) < level
        {
            self.cursor += 1;
        }
        let t_in = self.steps.get(self.cursor).0;
        let d = self.now - t_in;
        self.d_n += 1;
        self.d_sum += d as u128;
        self.d_min = self.d_min.min(d);
        self.d_max = self.d_max.max(d);

        if self.trace {
            let out_norm = (self.out_local as u128 * self.sn_num) as f64 / self.sn_den as f64;
            self.trace_out.push((secs(self.now), out_norm));
        } else {
            self.steps.prune_to(self.cursor);
        }
        self.delivered = true;
    }

    /// Everything the future evolution depends on, minus absolute time
    /// and cumulative totals: two states with equal fingerprints (and
    /// input remaining well above one cycle's worth) step through the
    /// same event sequence, shifted by the period.
    fn fingerprint(&self, buf: &mut Vec<u64>) {
        buf.clear();
        for i in 0..self.n() {
            buf.push(self.q_level[i]);
            buf.push(self.busy[i] as u64);
            buf.push(self.started[i] as u64);
            buf.push(self.pending_out[i].unwrap_or(NONE64));
            buf.push(self.agenda.time_of(i + 1).map_or(NONE64, |t| t - self.now));
        }
        buf.push(self.src_blocked as u64);
        buf.push(self.agenda.time_of(SRC).map_or(NONE64, |t| t - self.now));
        // Exact in-flight volume (not derivable from queue levels alone
        // once job ratios differ).
        buf.push(self.inflight as u64);
        buf.push((self.inflight >> 64) as u64);
        // The live stairstep window, relative to now/cum_in: these
        // entries feed future delay lookups.
        for i in self.cursor..self.steps.len() {
            let (t, c) = self.steps.get(i);
            buf.push(self.now - t);
            buf.push(self.cum_in - c);
        }
        // Pending-event tie order: slots sorted by arm sequence. Equal
        // times pop FIFO by arm order, so recurrence must preserve it.
        let mut by_seq: Vec<(u64, usize)> = (0..=self.n())
            .filter_map(|s| self.agenda.seq_of(s).map(|q| (q, s)))
            .collect();
        by_seq.sort_unstable();
        for (_, slot) in by_seq {
            buf.push(slot as u64);
        }
    }

    fn snapshot(&self) -> Snap {
        Snap {
            now: self.now,
            src_remaining: self.src_remaining,
            cum_in: self.cum_in,
            out_local: self.out_local,
            events: self.events,
            jobs_done: self.jobs_done.clone(),
            busy_ticks: self.busy_ticks.clone(),
            q_integral: self.q_integral.clone(),
            q_peak: self.q_peak.clone(),
            d_n: self.d_n,
            d_sum: self.d_sum,
            d_min: self.d_min,
            d_max: self.d_max,
            inflight_max: self.inflight_max,
        }
    }

    /// Fingerprint the current (between-events) state; on recurrence
    /// with stable extrema, advance as many whole cycles as the
    /// remaining input allows in O(1).
    fn try_jump(
        &mut self,
        map: &mut HashMap<Vec<u64>, Snap>,
        buf: &mut Vec<u64>,
        clears: &mut u32,
    ) {
        self.fingerprint(buf);
        let Some(s) = map.get(buf) else {
            if map.len() >= FP_CAP {
                // Non-recurrent so far (divergent unbounded overload
                // never recurs: some queue depth grows every cycle).
                // Retry with a fresh table a few times, then give up.
                map.clear();
                *clears += 1;
                if *clears >= FP_MAX_CLEARS {
                    self.ff_done = true;
                    return;
                }
            }
            map.insert(buf.clone(), self.snapshot());
            return;
        };

        let dt = self.now - s.now;
        let d_rem = s.src_remaining - self.src_remaining;
        // Extrema must have stabilized: a cycle that still moved a
        // peak or a delay bound is warmup, not steady state. (Peaks
        // are monotone; by periodicity an unmoved peak stays unmoved.)
        let stable = dt > 0
            && d_rem > 0
            && self.d_min == s.d_min
            && self.d_max == s.d_max
            && self.inflight_max == s.inflight_max
            && self.q_peak == s.q_peak;
        // Leave ≥ one cycle plus a full chunk so every skipped emission
        // provably uses a whole chunk and the tail replays exactly.
        let k = if stable {
            self.src_remaining.saturating_sub(d_rem + self.src_chunk) / d_rem
        } else {
            0
        };
        if k == 0 {
            // Re-key the snapshot to the newer visit so the next
            // recurrence measures a fresher (post-warmup) cycle.
            map.insert(buf.clone(), self.snapshot());
            return;
        }

        // Per-cycle deltas (current minus stored snapshot).
        let d_in = self.cum_in - s.cum_in;
        let d_out = self.out_local - s.out_local;
        let d_ev = self.events - s.events;
        let d_dn = self.d_n - s.d_n;
        let d_dsum = self.d_sum - s.d_sum;
        let d_jobs: Vec<u64> = self
            .jobs_done
            .iter()
            .zip(&s.jobs_done)
            .map(|(a, b)| a - b)
            .collect();
        let d_busy: Vec<u64> = self
            .busy_ticks
            .iter()
            .zip(&s.busy_ticks)
            .map(|(a, b)| a - b)
            .collect();
        let d_qint: Vec<u128> = self
            .q_integral
            .iter()
            .zip(&s.q_integral)
            .map(|(a, b)| a - b)
            .collect();

        let jump = u64::try_from(k as u128 * dt as u128)
            .expect("cycle-jump exceeds the 2^64-tick time range");
        self.now += jump;
        self.src_remaining -= k * d_rem;
        self.cum_in += k * d_in;
        self.out_local += k * d_out;
        self.events += k * d_ev;
        self.d_n += k * d_dn;
        self.d_sum += k as u128 * d_dsum;
        self.t_last_out += jump;
        for i in 0..self.n() {
            self.jobs_done[i] += k * d_jobs[i];
            self.busy_ticks[i] += k * d_busy[i];
            self.q_integral[i] += k as u128 * d_qint[i];
            self.q_last[i] += jump;
        }
        self.agenda.shift_armed(|t| t + jump);
        let (kd_t, kd_in) = (jump, k * d_in);
        self.steps.shift(|e| {
            e.0 += kd_t;
            e.1 += kd_in;
        });
        // Fingerprint equality pinned the in-flight numerator, so
        // Δin·sn_den == Δout·sn_num and `inflight` is unchanged.
        // (Drops only happen before `fault_horizon`, and jumping is
        // gated past it, so `dropped_num` is a constant here.)
        debug_assert_eq!(
            self.inflight,
            self.cum_in as i128 * self.sn_den as i128
                - self.out_local as i128 * self.sn_num as i128
                - self.dropped_num as i128
        );
        // One jump consumes all skippable input; the tail runs exactly.
        self.ff_done = true;
    }
}

fn assemble(w: &Det, params: &[NodeParams]) -> SimResult {
    let bytes_out = (w.out_local as u128 * w.sn_num) as f64 / w.sn_den as f64;
    let makespan = secs(w.t_last_out);
    let residual: f64 = w
        .q_level
        .iter()
        .zip(params)
        .map(|(&lvl, p)| lvl as f64 * p.norm_in)
        .sum();
    let per_queue_peak = w
        .q_peak
        .iter()
        .zip(params)
        .map(|(&pk, p)| (p.name.clone(), pk as f64 * p.norm_in))
        .collect();
    let horizon = secs(w.now).max(f64::MIN_POSITIVE);
    let per_node = params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let avg_queue = if w.now == 0 {
                w.q_level[i] as f64
            } else {
                let total = w.q_integral[i] + w.q_level[i] as u128 * (w.now - w.q_last[i]) as u128;
                total as f64 / w.now as f64
            };
            crate::result::NodeStats {
                name: p.name.clone(),
                utilization: (secs(w.busy_ticks[i]) / horizon).min(1.0),
                jobs: w.jobs_done[i],
                bytes_in: w.jobs_done[i] * p.job_in,
                avg_queue: avg_queue * p.norm_in,
            }
        })
        .collect();
    let throughput = if makespan > 0.0 {
        bytes_out / makespan
    } else {
        0.0
    };
    SimResult {
        bytes_out,
        makespan,
        throughput,
        steady_throughput: steady_slope(&w.trace_out).unwrap_or(throughput),
        delay_min: if w.d_n > 0 { secs(w.d_min) } else { 0.0 },
        delay_max: if w.d_n > 0 { secs(w.d_max) } else { 0.0 },
        delay_mean: if w.d_n > 0 {
            (w.d_sum as f64 / w.d_n as f64) / TICK_HZ
        } else {
            0.0
        },
        peak_backlog: w.inflight_max as f64 / w.sn_den as f64,
        per_queue_peak,
        residual,
        trace_in: if w.trace {
            w.steps.iter().map(|(t, c)| (secs(t), c as f64)).collect()
        } else {
            Vec::new()
        },
        trace_out: w.trace_out.clone(),
        per_node,
        events: w.events,
        dropped_jobs: w.dropped_jobs,
        dropped_bytes: w.dropped_num as f64 / w.sn_den as f64,
        retries: w.retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceModel;
    use crate::reference::simulate_reference;
    use nc_core::num::Rat;
    use nc_core::pipeline::{Node, NodeKind, Source, StageRates};

    fn node(name: &str, rate: i64, jin: i64, jout: i64) -> Node {
        Node::new(
            name,
            NodeKind::Compute,
            StageRates::fixed(Rat::int(rate)),
            Rat::ZERO,
            Rat::int(jin),
            Rat::int(jout),
        )
    }

    fn pipeline(rate: i64, nodes: Vec<Node>) -> Pipeline {
        Pipeline::new(
            "det-test",
            Source {
                rate: Rat::int(rate),
                burst: Rat::int(64),
            },
            nodes,
        )
    }

    fn cfg(total: u64, ff: bool) -> SimConfig {
        SimConfig {
            seed: 7,
            total_input: total,
            source_chunk: Some(64),
            queue_capacity: None,
            queue_capacities: None,
            service_model: ServiceModel::Deterministic,
            trace: false,
            fast_forward: ff,
            faults: None,
            workers: None,
        }
    }

    fn assert_bitwise(a: &SimResult, b: &SimResult) {
        assert_eq!(a, b);
    }

    #[test]
    fn fast_forward_is_bitwise_identical_unbounded() {
        let p = pipeline(1000, vec![node("a", 800, 64, 64), node("b", 700, 64, 64)]);
        let slow = simulate_det(&p, &cfg(64 * 5000, false));
        let fast = simulate_det(&p, &cfg(64 * 5000, true));
        assert_bitwise(&slow, &fast);
        // The jump actually engaged: both report the same event count
        // (it is part of the closed form), so check it against the
        // expected per-chunk cost instead.
        assert_eq!(slow.events, fast.events);
    }

    #[test]
    fn fast_forward_is_bitwise_identical_backpressured() {
        // Bounded queues + an overloaded tail stage: the steady state
        // is a backpressure limit cycle, which must recur and jump.
        let p = pipeline(
            2000,
            vec![node("a", 1500, 64, 64), node("slow", 400, 64, 64)],
        );
        let mut c_off = cfg(64 * 4000, false);
        c_off.queue_capacity = Some(256);
        let mut c_on = c_off.clone();
        c_on.fast_forward = true;
        let slow = simulate_det(&p, &c_off);
        let fast = simulate_det(&p, &c_on);
        assert_bitwise(&slow, &fast);
    }

    #[test]
    fn fast_forward_is_bitwise_identical_partial_residual() {
        // Total volume not a multiple of chunk or job size: the drain
        // tail has a partial chunk and a residual stuck in the queue.
        let p = pipeline(1000, vec![node("a", 800, 64, 48)]);
        let mut c_off = cfg(64 * 3000 + 37, false);
        c_off.source_chunk = Some(50);
        let mut c_on = c_off.clone();
        c_on.fast_forward = true;
        let slow = simulate_det(&p, &c_off);
        let fast = simulate_det(&p, &c_on);
        assert_bitwise(&slow, &fast);
        assert!(fast.residual > 0.0);
    }

    #[test]
    fn fast_forward_is_bitwise_identical_job_ratios() {
        // 4:1 then 1:4 job ratios exercise the rational sink norm.
        let p = pipeline(
            1000,
            vec![node("pack", 900, 64, 16), node("unpack", 850, 16, 64)],
        );
        let slow = simulate_det(&p, &cfg(64 * 4000, false));
        let fast = simulate_det(&p, &cfg(64 * 4000, true));
        assert_bitwise(&slow, &fast);
    }

    #[test]
    fn fast_forward_scales_sublinearly() {
        // 64× the input must not cost 64× the events when jumping.
        let p = pipeline(1000, vec![node("a", 800, 64, 64)]);
        let small = simulate_det(&p, &cfg(64 * 1000, true));
        let large = simulate_det(&p, &cfg(64 * 64000, true));
        // Events *reported* are identical to the exact engine's (the
        // closed form includes them), but the work done is the warmup +
        // one period + drain; sanity-check the volume really scaled.
        assert!(large.bytes_out > 60.0 * small.bytes_out);
        assert!(
            (large.throughput - small.throughput).abs() / small.throughput < 0.01,
            "steady throughput should match: {} vs {}",
            large.throughput,
            small.throughput
        );
    }

    #[test]
    fn matches_reference_engine_within_tick_tolerance() {
        // The tick engine deviates from the f64 reference only by the
        // one-time 2⁻⁴⁰ s quantization of each interval.
        let p = pipeline(1000, vec![node("a", 800, 64, 64), node("b", 700, 64, 64)]);
        let mut c = cfg(64 * 500, true);
        c.trace = true;
        let tick = simulate_det(&p, &c);
        let refr = simulate_reference(&p, &c);
        let close = |a: f64, b: f64, what: &str| {
            let denom = b.abs().max(1e-9);
            assert!((a - b).abs() / denom < 1e-6, "{what}: {a} vs {b}");
        };
        close(tick.bytes_out, refr.bytes_out, "bytes_out");
        close(tick.makespan, refr.makespan, "makespan");
        close(tick.throughput, refr.throughput, "throughput");
        close(tick.delay_min, refr.delay_min, "delay_min");
        close(tick.delay_max, refr.delay_max, "delay_max");
        close(tick.delay_mean, refr.delay_mean, "delay_mean");
        close(tick.peak_backlog, refr.peak_backlog, "peak_backlog");
        assert_eq!(tick.events, refr.events);
        assert_eq!(tick.per_node[0].jobs, refr.per_node[0].jobs);
    }

    #[test]
    fn divergent_overload_still_exact() {
        // Unbounded queue + overload: depths grow every cycle, nothing
        // recurs, the engine must fall back to exact stepping (and the
        // fingerprint table must not blow up the run).
        let p = pipeline(1000, vec![node("slow", 250, 64, 64)]);
        let slow = simulate_det(&p, &cfg(64 * 2000, false));
        let fast = simulate_det(&p, &cfg(64 * 2000, true));
        assert_bitwise(&slow, &fast);
        assert!(fast.residual == 0.0);
        assert!(fast.peak_backlog > 64.0 * 100.0);
    }

    // --- fault injection × fast-forward ---

    use crate::faults::{FaultSchedule, Outage, RecoveryPolicy, StallSpec};

    #[test]
    fn zero_fault_schedule_is_bit_identical_det() {
        let p = pipeline(1000, vec![node("a", 800, 64, 64), node("b", 700, 64, 64)]);
        let base = simulate_det(&p, &cfg(64 * 3000, true));
        let mut c = cfg(64 * 3000, true);
        c.faults = Some(FaultSchedule::none(2));
        let faulted = simulate_det(&p, &c);
        assert_bitwise(&base, &faulted);
    }

    #[test]
    fn fast_forward_bitwise_identical_under_outage_faults() {
        // Outage windows end: past the fault horizon the run is
        // time-shift invariant again and the jump must re-engage
        // losslessly. Exercise Block, Drop, and Retry policies.
        for (recovery, label) in [
            (RecoveryPolicy::Block, "block"),
            (RecoveryPolicy::Drop, "drop"),
            (
                RecoveryPolicy::Retry {
                    base: 0.01,
                    cap: 0.08,
                },
                "retry",
            ),
        ] {
            let p = pipeline(1000, vec![node("a", 800, 64, 64), node("b", 700, 64, 64)]);
            let mut fs = FaultSchedule::none(2);
            fs.stages[1].outages = vec![Outage {
                start: 5.0,
                duration: 2.0,
            }];
            fs.stages[1].recovery = recovery;
            let mut c_off = cfg(64 * 5000, false);
            c_off.faults = Some(fs);
            let mut c_on = c_off.clone();
            c_on.fast_forward = true;
            let slow = simulate_det(&p, &c_off);
            let fast = simulate_det(&p, &c_on);
            assert_eq!(slow, fast, "policy {label}");
        }
    }

    #[test]
    fn periodic_stall_disables_jump_but_stays_exact() {
        // A recurring stall never clears the fault horizon: both runs
        // must step every event and agree bitwise.
        let p = pipeline(1000, vec![node("a", 800, 64, 64)]);
        let mut fs = FaultSchedule::none(1);
        fs.stages[0].stall = Some(StallSpec {
            budget: 0.01,
            period: 0.1,
        });
        let mut c_off = cfg(64 * 1500, false);
        c_off.faults = Some(fs);
        let mut c_on = c_off.clone();
        c_on.fast_forward = true;
        let slow = simulate_det(&p, &c_off);
        let fast = simulate_det(&p, &c_on);
        assert_bitwise(&slow, &fast);
        // And the stall really bit: slower than the unfaulted run.
        let base = simulate_det(&p, &cfg(64 * 1500, true));
        assert!(fast.makespan > base.makespan);
    }

    #[test]
    fn det_drop_accounting_is_exact_with_job_ratios() {
        // Non-trivial job ratios make the drop quantum a true rational:
        // the lcm-scaled denominator must keep conservation exact.
        let p = pipeline(
            1000,
            vec![node("pack", 900, 64, 16), node("unpack", 850, 16, 64)],
        );
        let total = 64 * 2000;
        let mut fs = FaultSchedule::none(2);
        fs.stages[1].outages = vec![Outage {
            start: 3.0,
            duration: 5.0,
        }];
        fs.stages[1].recovery = RecoveryPolicy::Drop;
        let mut c = cfg(total, true);
        c.faults = Some(fs);
        let r = simulate_det(&p, &c);
        assert!(r.dropped_jobs > 0);
        assert!(
            (r.bytes_out + r.dropped_bytes + r.residual - total as f64).abs() < 1e-6,
            "out {} + dropped {} + residual {} != {}",
            r.bytes_out,
            r.dropped_bytes,
            r.residual,
            total
        );
    }

    #[test]
    fn traced_deterministic_run_disables_jump_but_stays_exact() {
        let p = pipeline(1000, vec![node("a", 800, 64, 64)]);
        let mut c = cfg(64 * 800, true);
        c.trace = true;
        let traced = simulate_det(&p, &c);
        let mut c2 = cfg(64 * 800, true);
        c2.trace = false;
        let lean = simulate_det(&p, &c2);
        assert!(!traced.trace_out.is_empty());
        assert!(lean.trace_out.is_empty());
        assert_eq!(traced.delay_mean, lean.delay_mean);
        assert_eq!(traced.makespan, lean.makespan);
        assert_eq!(traced.events, lean.events);
    }
}

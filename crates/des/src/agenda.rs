//! A fixed-slot event agenda for models with one pending event per
//! process.
//!
//! Streaming-pipeline simulations keep at most one future event per
//! stage (its next completion) plus one for the source (its next
//! emission). A general calendar pays for that shape: every job costs a
//! push, a pop, and a type-erased closure dispatch. A [`SlotAgenda`]
//! stores the pending set as a dense array of `(time, seq)` tokens
//! indexed by process id — arming is a store, popping is a scan over a
//! handful of slots, and dispatch is a direct `match` in the caller.
//!
//! Ordering is identical to [`Sim`](crate::Sim)'s calendar: earliest
//! time first, FIFO within a timestamp via a strictly monotone sequence
//! number assigned at arm time. A model that mirrors its `schedule`
//! calls with `arm` calls therefore replays the exact event order of
//! the calendar-based engine — the property the `nc-streamsim` engine
//! equivalence tests assert.
//!
//! The agenda is generic over the time type so the same structure
//! drives both the `f64`-seconds stochastic engine and the
//! integer-tick deterministic engine (whose cycle-jump fast-forward
//! needs [`SlotAgenda::shift_armed`] to translate every pending event
//! by a whole number of periods).

/// Dense one-event-per-slot pending set with calendar-identical
/// ordering.
#[derive(Clone, Debug)]
pub struct SlotAgenda<T> {
    slots: Vec<Option<(T, u64)>>,
    armed: usize,
    seq: u64,
}

impl<T> Default for SlotAgenda<T> {
    /// An empty zero-slot agenda (resize with [`SlotAgenda::reset`]).
    fn default() -> SlotAgenda<T> {
        SlotAgenda {
            slots: Vec::new(),
            armed: 0,
            seq: 0,
        }
    }
}

impl<T: Copy + Ord> SlotAgenda<T> {
    /// An agenda with `n` empty slots and the sequence counter at zero.
    pub fn new(n: usize) -> SlotAgenda<T> {
        SlotAgenda {
            slots: vec![None; n],
            armed: 0,
            seq: 0,
        }
    }

    /// Reset to `n` empty slots (reusing storage) and a zero sequence
    /// counter.
    pub fn reset(&mut self, n: usize) {
        self.slots.clear();
        self.slots.resize(n, None);
        self.armed = 0;
        self.seq = 0;
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no slot is armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// Number of armed slots.
    pub fn pending(&self) -> usize {
        self.armed
    }

    /// `true` if `slot` holds a pending event.
    pub fn is_armed(&self, slot: usize) -> bool {
        self.slots[slot].is_some()
    }

    /// Sequence number of `slot`'s pending event, if armed.
    pub fn seq_of(&self, slot: usize) -> Option<u64> {
        self.slots[slot].map(|(_, s)| s)
    }

    /// Time of `slot`'s pending event, if armed.
    pub fn time_of(&self, slot: usize) -> Option<T> {
        self.slots[slot].map(|(t, _)| t)
    }

    /// Schedule `slot`'s next event at `t`, consuming the next sequence
    /// number (exactly as a calendar `schedule` call would).
    ///
    /// # Panics
    /// Panics if the slot is already armed — a process has at most one
    /// pending event.
    pub fn arm(&mut self, slot: usize, t: T) {
        assert!(self.slots[slot].is_none(), "slot {slot} already armed");
        self.slots[slot] = Some((t, self.seq));
        self.seq += 1;
        self.armed += 1;
    }

    /// Cancel `slot`'s pending event, if any.
    pub fn disarm(&mut self, slot: usize) {
        if self.slots[slot].take().is_some() {
            self.armed -= 1;
        }
    }

    /// The earliest pending `(slot, time)` without removing it.
    pub fn peek(&self) -> Option<(usize, T)> {
        self.min_slot().map(|i| {
            let (t, _) = self.slots[i].expect("armed");
            (i, t)
        })
    }

    /// Remove and return the earliest pending `(slot, time)` — ties
    /// break FIFO by arm order, matching the calendar's `(time, seq)`
    /// key.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        let i = self.min_slot()?;
        let (t, _) = self.slots[i].take().expect("armed");
        self.armed -= 1;
        Some((i, t))
    }

    /// Translate every armed event's time by `f` (the deterministic
    /// fast-forward shifts all pending events by a whole number of
    /// cycle periods). Sequence numbers — and therefore tie order — are
    /// unchanged.
    pub fn shift_armed(&mut self, mut f: impl FnMut(T) -> T) {
        for s in self.slots.iter_mut().flatten() {
            s.0 = f(s.0);
        }
    }

    /// Index of the earliest armed slot by `(time, seq)`.
    fn min_slot(&self) -> Option<usize> {
        let mut best: Option<(usize, (T, u64))> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(key) = *s {
                match best {
                    Some((_, k)) if k <= key => {}
                    _ => best = Some((i, key)),
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut a: SlotAgenda<u64> = SlotAgenda::new(3);
        a.arm(0, 30);
        a.arm(1, 10);
        a.arm(2, 20);
        assert_eq!(a.pending(), 3);
        assert_eq!(a.pop(), Some((1, 10)));
        assert_eq!(a.pop(), Some((2, 20)));
        assert_eq!(a.pop(), Some((0, 30)));
        assert_eq!(a.pop(), None);
        assert!(a.is_empty());
    }

    #[test]
    fn ties_break_fifo_by_arm_order() {
        let mut a: SlotAgenda<u64> = SlotAgenda::new(3);
        a.arm(2, 5);
        a.arm(0, 5);
        a.arm(1, 5);
        assert_eq!(a.pop(), Some((2, 5)));
        assert_eq!(a.pop(), Some((0, 5)));
        assert_eq!(a.pop(), Some((1, 5)));
    }

    #[test]
    fn rearm_after_pop_loses_tie_to_older() {
        let mut a: SlotAgenda<u64> = SlotAgenda::new(2);
        a.arm(0, 5);
        a.arm(1, 5);
        assert_eq!(a.pop(), Some((0, 5)));
        a.arm(0, 5); // re-armed: newer seq than slot 1's pending event
        assert_eq!(a.pop(), Some((1, 5)));
        assert_eq!(a.pop(), Some((0, 5)));
    }

    #[test]
    #[should_panic(expected = "already armed")]
    fn double_arm_panics() {
        let mut a: SlotAgenda<u64> = SlotAgenda::new(1);
        a.arm(0, 1);
        a.arm(0, 2);
    }

    #[test]
    fn disarm_and_peek() {
        let mut a: SlotAgenda<u64> = SlotAgenda::new(2);
        a.arm(0, 7);
        a.arm(1, 3);
        assert_eq!(a.peek(), Some((1, 3)));
        a.disarm(1);
        assert_eq!(a.peek(), Some((0, 7)));
        a.disarm(1); // idempotent
        assert_eq!(a.pending(), 1);
    }

    #[test]
    fn shift_preserves_order() {
        let mut a: SlotAgenda<u64> = SlotAgenda::new(3);
        a.arm(0, 5);
        a.arm(1, 5);
        a.arm(2, 9);
        a.shift_armed(|t| t + 100);
        assert_eq!(a.pop(), Some((0, 105)));
        assert_eq!(a.pop(), Some((1, 105)));
        assert_eq!(a.pop(), Some((2, 109)));
    }

    #[test]
    fn reset_clears_slots_and_seq() {
        let mut a: SlotAgenda<u64> = SlotAgenda::new(2);
        a.arm(0, 1);
        a.reset(4);
        assert_eq!(a.len(), 4);
        assert!(a.is_empty());
        a.arm(3, 2);
        assert_eq!(a.seq_of(3), Some(0));
    }
}

//! Worker-count scaling of the stage-parallel simulation engine
//! (DESIGN.md §12): the BITW pipeline at 64 MiB and 1 GiB, run by the
//! sequential thinned engine (`workers: None`) and by the conservative
//! PDES at 1/2/4/8 workers.
//!
//! The parallel engine's results are bit-identical across worker
//! counts (property-tested in `nc-streamsim/tests/prop_par.rs`), so
//! these rows time the *same computation* under different thread
//! partitions. Worker counts above the host's cores would benchmark
//! pure contention, not the engine, so they are skipped with a printed
//! notice (the same policy as `perfbase` and `scripts/perfgate.sh`);
//! the speedup target (≥2x at 4 workers on the 1 GiB run) is only
//! observable on hosts with ≥4 cores.
//!
//! `PAR_SCALING_SMOKE=1` (the `check.sh` lane) drops the 1 GiB rows so
//! `--test` mode stays fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nc_apps::bitw;
use nc_streamsim::{simulate, SimConfig};

fn config(total: u64, workers: Option<usize>) -> SimConfig {
    let mut c = bitw::sim_config(42);
    c.total_input = total;
    c.trace = false;
    c.workers = workers;
    c
}

fn bench_par_scaling(c: &mut Criterion) {
    let pipeline = bitw::sim_pipeline();
    let smoke = std::env::var_os("PAR_SCALING_SMOKE").is_some();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sizes: &[(&str, u64)] = if smoke {
        &[("bitw_64MiB", 64 << 20)]
    } else {
        &[("bitw_64MiB", 64 << 20), ("bitw_1GiB", 1 << 30)]
    };
    for &(name, total) in sizes {
        let mut g = c.benchmark_group(format!("par_scaling/{name}"));
        g.sample_size(if total > 64 << 20 { 5 } else { 10 });
        g.bench_function("seq", |b| {
            let cfg = config(total, None);
            b.iter(|| black_box(simulate(&pipeline, &cfg)))
        });
        for workers in [1usize, 2, 4, 8] {
            if workers > host_cpus {
                println!(
                    "par_scaling/{name}: skipping workers={workers} \
                     (> host_cpus={host_cpus}: would benchmark contention, not scaling)"
                );
                continue;
            }
            g.bench_with_input(BenchmarkId::new("par", workers), &workers, |b, &w| {
                let cfg = config(total, Some(w));
                b.iter(|| black_box(simulate(&pipeline, &cfg)))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_par_scaling);
criterion_main!(benches);

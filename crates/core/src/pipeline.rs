//! Heterogeneous streaming-pipeline models (§3–§5 of the paper).
//!
//! This module is the paper's contribution: it extends classic network
//! calculus — built for *communication* elements — with *computation*
//! elements, so a streaming application deployed across CPUs, GPUs,
//! FPGAs, PCIe buses and network links can be analyzed end to end from
//! per-stage measurements taken in isolation.
//!
//! A [`Pipeline`] is a chain of [`Node`]s. Each node carries:
//!
//! * measured min/avg/max throughput **of the data it actually
//!   processes** ([`StageRates`]);
//! * a dispatch latency `T_n`;
//! * a **job ratio**: input block size `job_in` vs. output block size
//!   `job_out` (Figure 3 of the paper annotates every BLAST node with
//!   this ratio);
//! * the node kind (compute, PCIe hop, network link) — only
//!   documentation for the models, but used by the simulator.
//!
//! Building a [`PipelineModel`] performs the paper's two modeling
//! steps:
//!
//! 1. **Normalization** (after Timcheck & Buhler): all volumes are
//!    re-expressed relative to the *pipeline input*. A stage whose
//!    upstream compresses data 4:1 effectively serves input-referred
//!    data 4× faster than its local measurement.
//! 2. **Job-aggregation latency** (§3): a node that must collect `b_n`
//!    bytes before dispatching adds `b_n / R_{α,n−1}` of collection
//!    time, giving the recurrence
//!    `T_n^tot = T_{n−1}^tot + b_n / R_{α,n−1} + T_n`.
//!
//! The model exposes system-level and per-node §3 bounds, the
//! packetized service curves, subset analysis (any contiguous node
//! range), and horizon-based throughput bounds matching the paper's
//! Tables 1 and 3.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::bounds::{self, Regime};
use crate::cache::{CacheStats, CurveCache, CurveOps, DirectOps};
use crate::curve::{shapes, Curve};
use crate::fault::FaultModel;
use crate::num::{Rat, Value};
use crate::ops::{min_plus_conv, min_plus_deconv};

/// What a pipeline stage physically is. The network-calculus treatment
/// is identical (that is the paper's point); the discrete-event
/// simulator and reports use the distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A computation stage (CPU/GPU/FPGA kernel).
    Compute,
    /// A network link (e.g. 10 GbE between FPGAs).
    NetworkLink,
    /// A PCIe/host-memory hop.
    PcieLink,
}

/// Min/avg/max throughput of a stage, in bytes/s of the data the stage
/// locally processes, measured in isolation (§5: "we will test each
/// stage in isolation and measure performance in isolation").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageRates {
    /// Worst observed sustained rate — feeds the service curve `β`.
    pub min: Rat,
    /// Average rate — feeds the queueing/roofline comparisons.
    pub avg: Rat,
    /// Best observed rate — feeds the maximum service curve `γ`.
    pub max: Rat,
}

impl StageRates {
    /// A stage with a single deterministic rate (links, fixed-function
    /// hardware).
    pub fn fixed(rate: Rat) -> StageRates {
        StageRates {
            min: rate,
            avg: rate,
            max: rate,
        }
    }

    /// Construct from measured `(min, avg, max)`.
    pub fn new(min: Rat, avg: Rat, max: Rat) -> StageRates {
        StageRates { min, avg, max }
    }
}

/// One stage of a streaming pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable stage name (appears in reports).
    pub name: String,
    /// Stage kind.
    pub kind: NodeKind,
    /// Isolated throughput measurements (local bytes/s).
    pub rates: StageRates,
    /// Dispatch/initiation latency `T_n` in seconds (kernel launch,
    /// DMA setup, connection overhead…).
    pub latency: Rat,
    /// Bytes the node collects before initiating a job (`b_n`), in
    /// *local* units at the node's input.
    pub job_in: Rat,
    /// Bytes the node emits per completed job, in local units at the
    /// node's output. `job_in : job_out` is the paper's job ratio.
    pub job_out: Rat,
    /// Optional fault hypothesis: when set, the stage's service curve
    /// is replaced by the guaranteed degraded rate-latency curve
    /// (see [`crate::fault::FaultModel`]).
    #[serde(default)]
    pub fault: Option<FaultModel>,
}

impl Node {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        kind: NodeKind,
        rates: StageRates,
        latency: Rat,
        job_in: Rat,
        job_out: Rat,
    ) -> Node {
        Node {
            name: name.into(),
            kind,
            rates,
            latency,
            job_in,
            job_out,
            fault: None,
        }
    }

    /// Attach a fault hypothesis to the stage (builder style).
    pub fn with_fault(mut self, fault: FaultModel) -> Node {
        self.fault = Some(fault);
        self
    }

    /// The job ratio `job_in / job_out` (> 1 compresses, < 1 expands).
    pub fn job_ratio(&self) -> Rat {
        self.job_in / self.job_out
    }
}

/// The data source feeding the pipeline, as a leaky-bucket constraint
/// in input-referred bytes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Source {
    /// Sustained arrival rate `R_α` (bytes/s).
    pub rate: Rat,
    /// Burst `b` (bytes) deliverable instantaneously.
    pub burst: Rat,
}

/// Errors detected by [`Pipeline::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// The pipeline has no nodes.
    NoNodes,
    /// A rate triple is not ordered `0 < min ≤ avg ≤ max`.
    BadRates(String),
    /// A job size is not strictly positive.
    BadJobSize(String),
    /// A latency is negative.
    NegativeLatency(String),
    /// The source rate or burst is invalid.
    BadSource,
    /// A stage's fault model has invalid parameters (message from
    /// [`FaultModel::validate`]).
    BadFault(String, String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NoNodes => write!(f, "pipeline has no nodes"),
            PipelineError::BadRates(n) => write!(f, "node '{n}': need 0 < min <= avg <= max"),
            PipelineError::BadJobSize(n) => write!(f, "node '{n}': job sizes must be > 0"),
            PipelineError::NegativeLatency(n) => write!(f, "node '{n}': latency must be >= 0"),
            PipelineError::BadSource => write!(f, "source rate must be > 0 and burst >= 0"),
            PipelineError::BadFault(n, why) => write!(f, "node '{n}': {why}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A linear streaming pipeline: source plus a chain of nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pipeline {
    /// Application name (appears in reports).
    pub name: String,
    /// Input source constraint.
    pub source: Source,
    /// Stages in flow order.
    pub nodes: Vec<Node>,
}

impl Pipeline {
    /// Create a pipeline; call [`Pipeline::validate`] before modeling.
    pub fn new(name: impl Into<String>, source: Source, nodes: Vec<Node>) -> Pipeline {
        Pipeline {
            name: name.into(),
            source,
            nodes,
        }
    }

    /// Check structural validity.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.nodes.is_empty() {
            return Err(PipelineError::NoNodes);
        }
        if !self.source.rate.is_positive() || self.source.burst.is_negative() {
            return Err(PipelineError::BadSource);
        }
        for n in &self.nodes {
            let r = n.rates;
            if !(r.min.is_positive() && r.min <= r.avg && r.avg <= r.max) {
                return Err(PipelineError::BadRates(n.name.clone()));
            }
            if !n.job_in.is_positive() || !n.job_out.is_positive() {
                return Err(PipelineError::BadJobSize(n.name.clone()));
            }
            if n.latency.is_negative() {
                return Err(PipelineError::NegativeLatency(n.name.clone()));
            }
            if let Some(fault) = &n.fault {
                if let Err(why) = fault.validate() {
                    return Err(PipelineError::BadFault(n.name.clone(), why));
                }
            }
        }
        Ok(())
    }

    /// Normalization factor at each node's *input*: multiply local
    /// volumes there by this factor to express them input-referred.
    /// `norms[0] = 1`; `norms[n] = Π_{k<n} job_in_k / job_out_k`.
    pub fn normalization_factors(&self) -> Vec<Rat> {
        let mut norms = Vec::with_capacity(self.nodes.len());
        let mut acc = Rat::ONE;
        for n in &self.nodes {
            norms.push(acc);
            acc *= n.job_ratio();
        }
        norms
    }

    /// Build the network-calculus model.
    ///
    /// # Panics
    /// Panics if the pipeline is invalid; call [`Pipeline::validate`]
    /// first for a recoverable error.
    pub fn build_model(&self) -> PipelineModel {
        self.build_model_with(&mut DirectOps)
    }

    /// Build the model reusing `cache` across calls.
    ///
    /// Identical results to [`Pipeline::build_model`] (the per-stage
    /// analysis is the same code, and the memoized operators are exact
    /// — see [`crate::cache`]), but two layers of work are shared with
    /// previous builds against the same cache:
    ///
    /// * **prefix reuse** — the cascade analysis of the longest leading
    ///   run of stages whose parameters (and source) match a previous
    ///   build is replayed from the memo instead of re-derived, so a
    ///   sweep that varies only stage `k` re-analyzes only stages
    ///   `k..n`;
    /// * **operator memoization** — every `⊗`/`⊘` on curves already
    ///   seen by the cache (e.g. the unchanged suffix service curves in
    ///   the concatenation fold) is a hash-map lookup.
    ///
    /// # Panics
    /// Panics if the pipeline is invalid.
    pub fn build_model_cached(&self, cache: &mut ModelCache) -> PipelineModel {
        if let Err(e) = self.validate() {
            panic!("Pipeline::build_model_cached on invalid pipeline: {e}");
        }
        let norms = self.normalization_factors();
        let arrival = shapes::leaky_bucket(self.source.rate, self.source.burst);
        let sigs: Arc<[StageSig]> = self.nodes.iter().map(StageSig::of).collect();
        let key_of = |len: usize| PrefixKey {
            source_rate: self.source.rate,
            source_burst: self.source.burst,
            len,
            stages: Arc::clone(&sigs),
        };
        let ModelCache { curves, prefixes } = cache;

        // Longest previously analyzed prefix of this cascade.
        let mut st = CascadeState::start(&self.source, &arrival);
        let mut models: Vec<Arc<NodeModel>> = Vec::with_capacity(self.nodes.len());
        let mut start = 0;
        for len in (1..=self.nodes.len()).rev() {
            if let Some(e) = prefixes.get(&key_of(len)) {
                st = e.state.clone();
                models = e.models.clone();
                start = len;
                curves.stats_mut().prefix_hits += 1;
                break;
            }
        }
        if start == 0 {
            curves.stats_mut().prefix_misses += 1;
        }

        // Analyze the remaining stages, memoizing every new prefix.
        for (i, (node, norm)) in self.nodes.iter().zip(&norms).enumerate().skip(start) {
            models.push(Arc::new(stage_step(node, *norm, &mut st, curves)));
            prefixes.insert(
                key_of(i + 1),
                PrefixEntry {
                    state: st.clone(),
                    models: models.clone(),
                },
            );
        }

        self.assemble(arrival, models, st)
    }

    fn build_model_with(&self, ops: &mut dyn CurveOps) -> PipelineModel {
        if let Err(e) = self.validate() {
            panic!("Pipeline::build_model on invalid pipeline: {e}");
        }
        let norms = self.normalization_factors();

        // Source arrival curve (input-referred by definition).
        let arrival = shapes::leaky_bucket(self.source.rate, self.source.burst);

        // Per-node curves and the §3 aggregation-latency recurrence.
        let mut st = CascadeState::start(&self.source, &arrival);
        let mut per_node: Vec<Arc<NodeModel>> = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            per_node.push(Arc::new(stage_step(n, norms[i], &mut st, ops)));
        }
        self.assemble(arrival, per_node, st)
    }

    /// Extract per-stage conservative lookahead windows for parallel
    /// simulation (DESIGN.md §12).
    ///
    /// Conservative (null-message) PDES needs, for every stage, a sound
    /// lower bound on how far its next output lies beyond its inputs.
    /// The NC model provides exactly that: a stage whose rate-latency
    /// service is `β_n = R_n(t − T_n)⁺` and that must aggregate `b_n`
    /// bytes arriving at a rate bounded by `R_{α,n−1}` cannot emit
    /// before
    ///
    /// ```text
    ///   T_n + b_n/R_{α,n−1}   (§3 aggregation recurrence, collection)
    ///           + b_n/R_max,n (max-service floor on one job)
    /// ```
    ///
    /// so a downstream shard may always advance that far past the
    /// upstream frontier. `min_job_time` is additionally the floor on
    /// the gap between *consecutive* emissions (back-to-back jobs are
    /// serialized through the stage), which is the pacing bound the
    /// parallel engine in `nc-streamsim` uses.
    ///
    /// Values agree exactly with [`Pipeline::build_model`] — the
    /// aggregation term is read off the canonical cascade analysis, and
    /// the scalar terms come from the same `Node` fields the service
    /// curves are built from. All times are in seconds ([`Rat`], exact).
    ///
    /// # Panics
    /// Panics if the pipeline is invalid; call [`Pipeline::validate`]
    /// first for a recoverable error.
    pub fn stage_lookaheads(&self) -> Vec<StageLookahead> {
        let model = self.build_model();
        self.nodes
            .iter()
            .zip(&model.per_node)
            .map(|(n, nm)| {
                // Local seconds: the normalization cancels in b/R, so
                // job_in/rates.max equals the input-referred
                // job_in_normalized/rate_max.
                let min_job_time = n.job_in / n.rates.max;
                debug_assert_eq!(min_job_time, nm.job_in_normalized / nm.rate_max);
                StageLookahead {
                    name: n.name.clone(),
                    dispatch_latency: n.latency,
                    aggregation_latency: nm.collection_latency,
                    min_job_time,
                    min_response: n.latency + nm.collection_latency + min_job_time,
                }
            })
            .collect()
    }

    /// System-level aggregation over the analyzed stages (the paper's
    /// §5 "combine all stages of the pipeline to create a single
    /// node"): bottleneck min rate with the recurrence latency, plus
    /// the exact concatenated service.
    fn assemble(
        &self,
        arrival: Curve,
        per_node: Vec<Arc<NodeModel>>,
        st: CascadeState,
    ) -> PipelineModel {
        let t_tot = st.t_tot;
        let r_bottleneck_min = per_node
            .iter()
            .map(|m| m.rate_min)
            .min()
            .expect("non-empty pipeline");
        let r_bottleneck_avg = per_node
            .iter()
            .map(|m| m.rate_avg)
            .min()
            .expect("non-empty pipeline");
        let r_bottleneck_max = per_node
            .iter()
            .map(|m| m.rate_max)
            .min()
            .expect("non-empty pipeline");
        let service_aggregate = shapes::rate_latency(r_bottleneck_min, t_tot);

        // Exact concatenation: folded stage by stage in `stage_step`
        // (so cached sweeps share the prefix of the fold).
        let service_concat = st.service_concat.expect("non-empty pipeline");
        let max_service = shapes::constant_rate(r_bottleneck_max);

        PipelineModel {
            pipeline_name: self.name.clone(),
            arrival,
            service: service_aggregate,
            service_concat,
            max_service,
            per_node,
            total_latency: t_tot,
            bottleneck_rate_min: r_bottleneck_min,
            bottleneck_rate_avg: r_bottleneck_avg,
            bottleneck_rate_max: r_bottleneck_max,
        }
    }
}

/// Cascade accumulator threaded through the per-stage analysis.
#[derive(Clone)]
struct CascadeState {
    /// Running `T_n^tot` of the §3 recurrence.
    t_tot: Rat,
    /// Sustained rate of the flow entering the current node.
    upstream_arrival_rate: Rat,
    /// Emitted block size of the upstream stage (`b*_{n−1}`),
    /// input-referred; seeds from the source burst.
    upstream_job_out: Rat,
    /// Arrival curve entering the current node.
    cascade_arrival: Curve,
    /// Running concatenation `β_0 ⊗ … ⊗ β_{n−1}` of the analyzed
    /// stages. Folded here (rather than re-folded in `assemble`) so the
    /// prefix memo carries the partial convolution and a sweep point
    /// that varies only the last stage performs a single new ⊗.
    service_concat: Option<Curve>,
}

impl CascadeState {
    fn start(source: &Source, arrival: &Curve) -> CascadeState {
        CascadeState {
            t_tot: Rat::ZERO,
            upstream_arrival_rate: source.rate,
            upstream_job_out: source.burst,
            cascade_arrival: arrival.clone(),
            service_concat: None,
        }
    }
}

/// Analyze one stage against the cascade state, advancing the state to
/// the next node. This is the single implementation behind both the
/// direct and the cached model builds, so the two agree exactly.
fn stage_step(n: &Node, norm: Rat, st: &mut CascadeState, ops: &mut dyn CurveOps) -> NodeModel {
    let r_avg = n.rates.avg * norm;
    let r_max = n.rates.max * norm;
    let b_in = n.job_in * norm; // input-referred job size b_n
    let l_out = n.job_out * norm * n.job_ratio(); // = b_in: emitted block, input-referred

    // Degraded-service transform (DESIGN.md §11): a fault rewrites the
    // stage's guaranteed (rate, latency) pair; the average rate is
    // derated by the long-run factor. The max-service curve γ stays
    // fault-free — it remains a valid *upper* service bound.
    let (r_min, eff_latency) = match &n.fault {
        Some(f) => f.degraded(n.rates.min * norm, n.latency),
        None => (n.rates.min * norm, n.latency),
    };
    let r_avg = match &n.fault {
        Some(f) => r_avg * f.rate_factor(),
        None => r_avg,
    };

    // §3 recurrence: collection time applies when this node gathers
    // more than the upstream emits per burst.
    let collect = if b_in > st.upstream_job_out {
        b_in / st.upstream_arrival_rate
    } else {
        Rat::ZERO
    };
    st.t_tot = st.t_tot + collect + eff_latency;

    // Packetized service curve: β'_n = [R_min (t − T_n)]⁺ − l ... ⁺
    let beta = ops.packetized_service(r_min, eff_latency + collect, l_out);
    let gamma = shapes::constant_rate(r_max);

    // Bounds for this node against the cascaded arrival (inlined
    // `bounds::analyze_node` routed through `ops` so cached builds memo
    // the packetization, the bound values, and the output-bound
    // convolutions).
    let regime = bounds::classify_regime(&st.cascade_arrival, &beta);
    let backlog = ops.backlog(&st.cascade_arrival, &beta);
    let delay = ops.delay(&st.cascade_arrival, &beta);
    let ag = ops.conv(&st.cascade_arrival, &gamma);
    let output = ops.deconv(&ag, &beta);

    // Arrival seen by the next node: the output bound when the node
    // keeps up; otherwise the flow is capped by the service rate (fluid
    // flow analysis — bounds are infinite but throughput is still
    // defined, §3). The conservative relaxation caps coordinate growth
    // across long cascades of measured (near-coprime) rates without
    // ever tightening an upper bound.
    let next_arrival = match regime {
        Regime::Overloaded => shapes::leaky_bucket(r_min, l_out.max(st.upstream_job_out)),
        _ => output.relax_up(1_000_000),
    };
    let next_rate = match next_arrival.ultimate_slope() {
        Value::Finite(r) => r,
        Value::Infinity => st.upstream_arrival_rate,
        Value::NegInfinity => unreachable!("arrival curves are nonnegative"),
    };

    let model = NodeModel {
        name: n.name.clone(),
        kind: n.kind,
        normalization: norm,
        rate_min: r_min,
        rate_avg: r_avg,
        rate_max: r_max,
        job_in_normalized: b_in,
        collection_latency: collect,
        arrival: st.cascade_arrival.clone(),
        service: beta,
        max_service: gamma,
        backlog,
        delay,
        regime,
    };

    st.service_concat = Some(match st.service_concat.take() {
        Some(prefix) => ops.conv(&prefix, &model.service),
        None => model.service.clone(),
    });
    st.cascade_arrival = next_arrival;
    st.upstream_arrival_rate = next_rate;
    st.upstream_job_out = l_out;
    model
}

/// The parameters of one stage that determine its analysis given the
/// upstream cascade state — the per-stage component of a prefix key.
#[derive(Clone, PartialEq, Eq, Hash)]
struct StageSig {
    name: String,
    kind: NodeKind,
    min: Rat,
    avg: Rat,
    max: Rat,
    latency: Rat,
    job_in: Rat,
    job_out: Rat,
    fault: Option<FaultModel>,
}

impl StageSig {
    fn of(n: &Node) -> StageSig {
        StageSig {
            name: n.name.clone(),
            kind: n.kind,
            min: n.rates.min,
            avg: n.rates.avg,
            max: n.rates.max,
            latency: n.latency,
            job_in: n.job_in,
            job_out: n.job_out,
            fault: n.fault,
        }
    }
}

/// Key identifying the analysis of a leading run of stages: the source
/// constraint plus the first `len` stage parameters in order. Two
/// pipelines with equal keys have byte-identical cascade analyses for
/// that prefix.
///
/// All keys derived from one build share a single `Arc<[StageSig]>` of
/// the full signature vector, so constructing the key for each prefix
/// length during lookup is allocation-free; `Hash`/`Eq` only consider
/// `stages[..len]`.
#[derive(Clone)]
struct PrefixKey {
    source_rate: Rat,
    source_burst: Rat,
    len: usize,
    stages: Arc<[StageSig]>,
}

impl PrefixKey {
    fn prefix(&self) -> &[StageSig] {
        &self.stages[..self.len]
    }
}

impl PartialEq for PrefixKey {
    fn eq(&self, other: &Self) -> bool {
        self.source_rate == other.source_rate
            && self.source_burst == other.source_burst
            && self.len == other.len
            && ((Arc::ptr_eq(&self.stages, &other.stages)) || self.prefix() == other.prefix())
    }
}
impl Eq for PrefixKey {}

impl std::hash::Hash for PrefixKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.source_rate.hash(state);
        self.source_burst.hash(state);
        self.len.hash(state);
        for sig in self.prefix() {
            sig.hash(state);
        }
    }
}

/// Memoized cascade analysis of one prefix: the state entering the next
/// stage plus the per-node models so far (shared, not cloned, between
/// the entries of nested prefixes).
struct PrefixEntry {
    state: CascadeState,
    models: Vec<Arc<NodeModel>>,
}

/// Reusable state for [`Pipeline::build_model_cached`]: a
/// [`CurveCache`] for the min-plus operators plus a memo of analyzed
/// pipeline prefixes. Use one per worker thread in parallel sweeps.
#[derive(Default)]
pub struct ModelCache {
    curves: CurveCache,
    prefixes: HashMap<PrefixKey, PrefixEntry, crate::cache::FxBuildHasher>,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> ModelCache {
        ModelCache::default()
    }

    /// The underlying curve cache, for memoizing further operator calls
    /// against built models (e.g. [`PipelineModel::throughput_over_with`]).
    pub fn curves(&mut self) -> &mut CurveCache {
        &mut self.curves
    }

    /// Counters accumulated since construction (operator hits/misses,
    /// interned curves, and pipeline prefix reuse).
    pub fn stats(&self) -> CacheStats {
        self.curves.stats()
    }

    /// Number of memoized pipeline prefixes currently held.
    pub fn prefix_entries(&self) -> usize {
        self.prefixes.len()
    }

    /// Suffix-invalidation hook: evict every memoized prefix of
    /// `pipeline` longer than `keep` stages, returning the number of
    /// entries dropped.
    ///
    /// When a long-lived service reconfigures stage `k` of a pipeline
    /// (admission-control reprovisioning, degraded-mode rewrites), the
    /// cascade analyses of prefixes `0..=k` are still exact — only the
    /// entries *past* the edited stage are stale for the *old*
    /// signature chain, and under the new chain they would never be hit
    /// again (the new signatures miss and re-analyze). Calling this
    /// with the pre-edit pipeline and `keep = k` drops exactly those
    /// unreachable entries, bounding memo growth across
    /// reconfigurations without touching entries of other tenants that
    /// share the cache. Curves stay interned — the interner is
    /// append-only by design (identity soundness; see
    /// [`crate::cache`]).
    pub fn invalidate_suffix(&mut self, pipeline: &Pipeline, keep: usize) -> usize {
        let sigs: Arc<[StageSig]> = pipeline.nodes.iter().map(StageSig::of).collect();
        let before = self.prefixes.len();
        self.prefixes.retain(|key, _| {
            key.len <= keep
                || key.len > sigs.len()
                || key.source_rate != pipeline.source.rate
                || key.source_burst != pipeline.source.burst
                || key.prefix() != &sigs[..key.len]
        });
        before - self.prefixes.len()
    }
}

/// Network-calculus artifacts for one node, input-referred.
#[derive(Clone, Debug)]
pub struct NodeModel {
    /// Stage name.
    pub name: String,
    /// Stage kind.
    pub kind: NodeKind,
    /// Normalization factor applied to this node's local volumes.
    pub normalization: Rat,
    /// Normalized min rate (service curve rate).
    pub rate_min: Rat,
    /// Normalized average rate.
    pub rate_avg: Rat,
    /// Normalized max rate (max service curve rate).
    pub rate_max: Rat,
    /// Input-referred job size `b_n`.
    pub job_in_normalized: Rat,
    /// Collection time `b_n / R_{α,n−1}` charged by the §3 recurrence
    /// (zero when the upstream burst already covers the job).
    pub collection_latency: Rat,
    /// Arrival curve entering this node (cascaded output bounds).
    pub arrival: Curve,
    /// Packetized service curve `β'_n`.
    pub service: Curve,
    /// Maximum service curve `γ_n`.
    pub max_service: Curve,
    /// Backlog bound at this node.
    pub backlog: Value,
    /// Delay bound at this node.
    pub delay: Value,
    /// Operating regime at this node.
    pub regime: Regime,
}

/// A stage's conservative lookahead window for parallel simulation,
/// extracted from the NC model by [`Pipeline::stage_lookaheads`]. All
/// times are seconds; see DESIGN.md §12 for the derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageLookahead {
    /// Stage name.
    pub name: String,
    /// Dispatch/initiation latency `T_n` of the rate-latency service.
    pub dispatch_latency: Rat,
    /// §3 collection term `b_n / R_{α,n−1}` (zero when the upstream
    /// burst already covers the job), read off the cascade analysis.
    pub aggregation_latency: Rat,
    /// Max-service floor on one job, `b_n / R_max,n` — also the minimum
    /// gap between consecutive emissions of the stage.
    pub min_job_time: Rat,
    /// Earliest-response window: `T_n + b_n/R_{α,n−1} + b_n/R_max,n`.
    /// A downstream shard can always advance this far past the
    /// upstream's committed frontier.
    pub min_response: Rat,
}

/// The assembled network-calculus model of a pipeline.
#[derive(Clone, Debug)]
pub struct PipelineModel {
    /// Name copied from the pipeline.
    pub pipeline_name: String,
    /// System arrival curve `α`.
    pub arrival: Curve,
    /// Aggregate service curve `β` (bottleneck rate, recurrence latency) —
    /// the paper's single-node reduction.
    pub service: Curve,
    /// Exact concatenated service curve (`⊗` of per-node curves).
    pub service_concat: Curve,
    /// System maximum service curve `γ`.
    pub max_service: Curve,
    /// Per-node artifacts in flow order. `Arc`-shared so cached builds
    /// can return memoized prefix models without deep-cloning them;
    /// reads deref transparently.
    pub per_node: Vec<Arc<NodeModel>>,
    /// Total latency `T_N^tot` from the §3 recurrence.
    pub total_latency: Rat,
    /// Bottleneck normalized min rate.
    pub bottleneck_rate_min: Rat,
    /// Bottleneck normalized average rate.
    pub bottleneck_rate_avg: Rat,
    /// Bottleneck normalized max rate.
    pub bottleneck_rate_max: Rat,
}

/// Throughput bounds over a finite horizon, as reported in the paper's
/// Tables 1 and 3 (rates are input-referred bytes/s).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ThroughputBounds {
    /// Upper bound: the arrival-curve mean rate over the horizon (the
    /// paper: "the arrival curve corresponds to an upper bound on
    /// performance").
    pub upper: Value,
    /// Lower bound: the mean rate of `α ⊗ β` over the horizon — the
    /// guaranteed cumulative output of a greedy source (the paper's
    /// "the service curve … corresponds to the lower bound of predicted
    /// performance"; convolving with `α` additionally caps it at the
    /// arrival rate so `lower ≤ upper` always holds).
    pub lower: Value,
    /// Loose upper bound from the output flow bound `α*`.
    pub output_loose: Value,
}

impl PipelineModel {
    /// System backlog bound `x` (uses the aggregate service curve).
    pub fn backlog_bound(&self) -> Value {
        bounds::backlog_bound(&self.arrival, &self.service)
    }

    /// System virtual-delay bound `d`.
    pub fn delay_bound(&self) -> Value {
        bounds::delay_bound(&self.arrival, &self.service)
    }

    /// [`PipelineModel::backlog_bound`] through an operator provider, so
    /// sweeps evaluating many models against a [`CurveCache`] memoize
    /// the bound per `(arrival, service)` pair.
    pub fn backlog_bound_with(&self, ops: &mut dyn CurveOps) -> Value {
        ops.backlog(&self.arrival, &self.service)
    }

    /// [`PipelineModel::delay_bound`] through an operator provider.
    pub fn delay_bound_with(&self, ops: &mut dyn CurveOps) -> Value {
        ops.delay(&self.arrival, &self.service)
    }

    /// System output flow bound `α* = (α ⊗ γ) ⊘ β`.
    pub fn output_bound(&self) -> Curve {
        bounds::output_bound_with_max(&self.arrival, &self.max_service, &self.service)
    }

    /// [`PipelineModel::output_bound`] through an operator provider, so
    /// repeated evaluations against a [`CurveCache`] are memo lookups.
    pub fn output_bound_with(&self, ops: &mut dyn CurveOps) -> Curve {
        let ag = ops.conv(&self.arrival, &self.max_service);
        ops.deconv(&ag, &self.service)
    }

    /// Same bounds computed against the exact concatenated service
    /// curve instead of the aggregate reduction (always at least as
    /// tight).
    pub fn backlog_bound_concat(&self) -> Value {
        bounds::backlog_bound(&self.arrival, &self.service_concat)
    }

    /// Delay bound against the concatenated service curve.
    pub fn delay_bound_concat(&self) -> Value {
        bounds::delay_bound(&self.arrival, &self.service_concat)
    }

    /// [`PipelineModel::backlog_bound_concat`] through an operator
    /// provider.
    pub fn backlog_bound_concat_with(&self, ops: &mut dyn CurveOps) -> Value {
        ops.backlog(&self.arrival, &self.service_concat)
    }

    /// [`PipelineModel::delay_bound_concat`] through an operator
    /// provider.
    pub fn delay_bound_concat_with(&self, ops: &mut dyn CurveOps) -> Value {
        ops.delay(&self.arrival, &self.service_concat)
    }

    /// System operating regime.
    pub fn regime(&self) -> Regime {
        bounds::classify_regime(&self.arrival, &self.service)
    }

    /// Mean-rate throughput bounds over `[0, horizon]`: the paper's
    /// table rows divide cumulative curves by the horizon.
    ///
    /// # Panics
    /// Panics if `horizon ≤ 0`.
    pub fn throughput_over(&self, horizon: Rat) -> ThroughputBounds {
        self.throughput_over_with(&mut DirectOps, horizon)
    }

    /// [`PipelineModel::throughput_over`] through an operator provider.
    /// Sampling many horizons against a [`CurveCache`] computes the
    /// underlying `α ⊗ β` and `(α ⊗ γ) ⊘ β` once and re-evaluates the
    /// memoized curves per horizon.
    ///
    /// # Panics
    /// Panics if `horizon ≤ 0`.
    pub fn throughput_over_with(&self, ops: &mut dyn CurveOps, horizon: Rat) -> ThroughputBounds {
        assert!(horizon.is_positive(), "throughput horizon must be > 0");
        let inv = horizon.recip();
        let upper = self.arrival.eval(horizon).scale(inv);
        let lower = ops
            .conv(&self.arrival, &self.service)
            .eval(horizon)
            .scale(inv);
        let output_loose = self.output_bound_with(ops).eval(horizon).scale(inv);
        ThroughputBounds {
            upper,
            lower,
            output_loose,
        }
    }

    /// [`PipelineModel::throughput_over`] batched over a horizon
    /// ladder: the underlying `α ⊗ β` and `(α ⊗ γ) ⊘ β` curves are
    /// computed once (through `ops`, so a [`CurveCache`] shares them
    /// with other models too) and each horizon costs three curve
    /// evaluations. Exactly equal, element-wise, to calling
    /// [`PipelineModel::throughput_over`] per horizon.
    ///
    /// # Panics
    /// Panics if any horizon is `≤ 0`.
    pub fn throughput_profile_with(
        &self,
        ops: &mut dyn CurveOps,
        horizons: &[Rat],
    ) -> Vec<ThroughputBounds> {
        if horizons.is_empty() {
            return Vec::new();
        }
        let lower_curve = ops.conv(&self.arrival, &self.service);
        let output_curve = self.output_bound_with(ops);
        horizons
            .iter()
            .map(|&horizon| {
                assert!(horizon.is_positive(), "throughput horizon must be > 0");
                let inv = horizon.recip();
                ThroughputBounds {
                    upper: self.arrival.eval(horizon).scale(inv),
                    lower: lower_curve.eval(horizon).scale(inv),
                    output_loose: output_curve.eval(horizon).scale(inv),
                }
            })
            .collect()
    }

    /// Largest sustainable source rate that keeps the system backlog
    /// bound within `budget` bytes, against the exact concatenated
    /// service curve — the paper's §6 buffer/back-pressure question.
    /// Returns `None` when even a zero rate overflows the budget.
    pub fn max_admissible_rate(&self, budget: Rat) -> Option<Rat> {
        let (_, burst) = self.source_params();
        bounds::max_admissible_rate(&self.service_concat, burst, budget)
    }

    /// The paper's §3 overload-tolerant backlog estimate
    /// `x ≈ b + R_α · T_tot` — equal to [`PipelineModel::backlog_bound`]
    /// when underloaded, and a finite queue-sizing heuristic when
    /// `R_α > R_β` (where the true bound is infinite).
    pub fn heuristic_backlog(&self) -> Rat {
        let (rate, burst) = self.source_params();
        bounds::heuristic::backlog(rate, burst, self.total_latency)
    }

    /// The paper's §3 overload-tolerant delay estimate
    /// `d ≈ T_tot + b / R_β`.
    pub fn heuristic_delay(&self) -> Value {
        let (_, burst) = self.source_params();
        bounds::heuristic::delay(burst, self.bottleneck_rate_min, self.total_latency)
    }

    /// Source leaky-bucket parameters recovered from the arrival curve.
    fn source_params(&self) -> (Rat, Rat) {
        let rate = match self.arrival.ultimate_slope() {
            Value::Finite(r) => r,
            _ => Rat::ZERO,
        };
        let burst = match self.arrival.eval_right(Rat::ZERO) {
            Value::Finite(b) => b,
            _ => Rat::ZERO,
        };
        (rate, burst)
    }

    /// Backlog contribution of every node (the paper: "the
    /// contributions of the data occupancy bounds that are due to each
    /// node … can be determined analytically, which can assist a
    /// developer in allocating buffers").
    pub fn per_node_backlogs(&self) -> Vec<(String, Value)> {
        self.per_node
            .iter()
            .map(|m| (m.name.clone(), m.backlog))
            .collect()
    }

    /// Model for a contiguous subset of nodes `[from, to]` (0-based,
    /// inclusive), fed by the cascaded arrival at `from` (§4.2: "we can
    /// create models for intermediate systems by finding service curves
    /// for a subset of contiguous nodes").
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn subset(&self, from: usize, to: usize) -> SubsetModel {
        assert!(from <= to && to < self.per_node.len(), "bad subset range");
        let arrival = self.per_node[from].arrival.clone();
        let mut service = self.per_node[from].service.clone();
        for m in &self.per_node[from + 1..=to] {
            service = min_plus_conv(&service, &m.service);
        }
        let r_max = self.per_node[from..=to]
            .iter()
            .map(|m| m.rate_max)
            .min()
            .expect("non-empty range");
        let max_service = shapes::constant_rate(r_max);
        let backlog = bounds::backlog_bound(&arrival, &service);
        let delay = bounds::delay_bound(&arrival, &service);
        let output = min_plus_deconv(&min_plus_conv(&arrival, &max_service), &service);
        SubsetModel {
            from,
            to,
            arrival,
            service,
            max_service,
            backlog,
            delay,
            output,
        }
    }
}

/// Bounds for a contiguous slice of the pipeline.
#[derive(Clone, Debug)]
pub struct SubsetModel {
    /// First node index (inclusive).
    pub from: usize,
    /// Last node index (inclusive).
    pub to: usize,
    /// Arrival curve entering the slice.
    pub arrival: Curve,
    /// Concatenated service curve of the slice.
    pub service: Curve,
    /// Maximum service curve of the slice.
    pub max_service: Curve,
    /// Backlog bound for the slice.
    pub backlog: Value,
    /// Delay bound for the slice.
    pub delay: Value,
    /// Output bound leaving the slice.
    pub output: Curve,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::rat;
    use crate::units::{mib, mib_per_s};

    fn simple_node(name: &str, rate: i64, job: i64) -> Node {
        Node::new(
            name,
            NodeKind::Compute,
            StageRates::fixed(Rat::int(rate)),
            Rat::ZERO,
            Rat::int(job),
            Rat::int(job),
        )
    }

    fn two_stage() -> Pipeline {
        Pipeline::new(
            "two-stage",
            Source {
                rate: Rat::int(4),
                burst: Rat::int(8),
            },
            vec![simple_node("a", 10, 8), simple_node("b", 6, 8)],
        )
    }

    #[test]
    fn validation_catches_errors() {
        let mut p = two_stage();
        p.nodes.clear();
        assert_eq!(p.validate().unwrap_err(), PipelineError::NoNodes);

        let mut p = two_stage();
        p.nodes[0].rates.min = Rat::int(20); // min > avg
        assert!(matches!(
            p.validate().unwrap_err(),
            PipelineError::BadRates(_)
        ));

        let mut p = two_stage();
        p.nodes[1].job_in = Rat::ZERO;
        assert!(matches!(
            p.validate().unwrap_err(),
            PipelineError::BadJobSize(_)
        ));

        let mut p = two_stage();
        p.source.rate = Rat::ZERO;
        assert_eq!(p.validate().unwrap_err(), PipelineError::BadSource);
    }

    #[test]
    fn normalization_accumulates_job_ratios() {
        // fa2bit-style 4:1 then 1:2 expansion.
        let mut p = two_stage();
        p.nodes[0].job_in = Rat::int(8);
        p.nodes[0].job_out = Rat::int(2);
        p.nodes[1].job_in = Rat::int(2);
        p.nodes[1].job_out = Rat::int(4);
        let norms = p.normalization_factors();
        assert_eq!(norms, vec![Rat::ONE, Rat::int(4)]);
        let m = p.build_model();
        // Node b locally serves 6 B/s of quarter-volume data → 24 B/s
        // input-referred.
        assert_eq!(m.per_node[1].rate_min, Rat::int(24));
    }

    #[test]
    fn bottleneck_and_latency_aggregate() {
        let mut p = two_stage();
        p.nodes[0].latency = Rat::ONE;
        p.nodes[1].latency = Rat::int(2);
        let m = p.build_model();
        assert_eq!(m.bottleneck_rate_min, Rat::int(6));
        // Node a collects 8 bytes at source rate 4 → 2 s, but the source
        // burst is 8 = job, so no collection charge; node b's job (8)
        // equals node a's emitted block (8) → no charge either.
        assert_eq!(m.total_latency, Rat::int(3));
    }

    #[test]
    fn aggregation_latency_charged_when_job_exceeds_upstream_burst() {
        let mut p = two_stage();
        p.source.burst = Rat::int(2); // smaller than node a's job of 8
        p.nodes[0].latency = Rat::ONE;
        let m = p.build_model();
        // collect = b_n / R_α = 8 / 4 = 2, plus T = 1.
        assert_eq!(m.per_node[0].collection_latency, Rat::int(2));
        assert_eq!(m.total_latency, Rat::int(3));
    }

    #[test]
    fn stage_lookaheads_follow_the_aggregation_recurrence() {
        let mut p = two_stage();
        p.source.burst = Rat::int(2); // smaller than node a's job of 8
        p.nodes[0].latency = Rat::ONE;
        let la = p.stage_lookaheads();
        assert_eq!(la.len(), 2);
        // Node a: T = 1, collect = 8/4 = 2, one job at R_max: 8/10.
        assert_eq!(la[0].name, "a");
        assert_eq!(la[0].dispatch_latency, Rat::ONE);
        assert_eq!(la[0].aggregation_latency, Rat::int(2));
        assert_eq!(la[0].min_job_time, rat(4, 5));
        assert_eq!(la[0].min_response, Rat::ONE + Rat::int(2) + rat(4, 5));
        // Node b: job (8) equals node a's emitted block (8) → no
        // collection charge; 8 bytes at 6 B/s.
        assert_eq!(la[1].dispatch_latency, Rat::ZERO);
        assert_eq!(la[1].aggregation_latency, Rat::ZERO);
        assert_eq!(la[1].min_job_time, rat(4, 3));
        assert_eq!(la[1].min_response, rat(4, 3));
    }

    #[test]
    fn stage_lookaheads_agree_with_the_built_model() {
        let mut p = two_stage();
        p.nodes[0].job_out = Rat::int(2); // 4:1 reduction, non-unit norms
        p.nodes[1].job_in = Rat::int(2);
        p.nodes[1].job_out = Rat::int(2);
        let la = p.stage_lookaheads();
        let m = p.build_model();
        for (l, nm) in la.iter().zip(&m.per_node) {
            assert_eq!(l.name, nm.name);
            assert_eq!(l.aggregation_latency, nm.collection_latency);
            // Normalization cancels in b/R: local equals input-referred.
            assert_eq!(l.min_job_time, nm.job_in_normalized / nm.rate_max);
            assert_eq!(
                l.min_response,
                l.dispatch_latency + l.aggregation_latency + l.min_job_time
            );
        }
    }

    #[test]
    fn system_bounds_finite_when_underloaded() {
        let p = two_stage();
        let m = p.build_model();
        assert_eq!(m.regime(), Regime::Underloaded);
        assert!(m.backlog_bound().is_finite());
        assert!(m.delay_bound().is_finite());
        // The exact concatenation is also finite (a different, usually
        // tighter-rate but packetization-aware model).
        assert!(m.backlog_bound_concat().is_finite());
        assert!(m.delay_bound_concat().is_finite());
    }

    #[test]
    fn overload_detected_and_throughput_capped() {
        let mut p = two_stage();
        p.source.rate = Rat::int(20); // exceeds both stages
        let m = p.build_model();
        assert_eq!(m.regime(), Regime::Overloaded);
        assert_eq!(m.backlog_bound(), Value::Infinity);
        assert_eq!(m.delay_bound(), Value::Infinity);
        // Flow analysis still reports the bottleneck rate downstream.
        assert_eq!(m.per_node[1].regime, Regime::Overloaded);
    }

    #[test]
    fn throughput_bounds_bracket_bottleneck() {
        let p = two_stage();
        let m = p.build_model();
        let tb = m.throughput_over(Rat::int(100));
        // Upper ≈ source rate (plus vanishing burst term), lower below
        // bottleneck, output_loose ≥ upper.
        assert!(tb.upper >= Value::from(4));
        assert!(tb.lower <= Value::from(6));
        assert!(tb.lower.is_finite());
        assert!(tb.output_loose >= tb.lower);
    }

    #[test]
    fn subset_matches_full_range() {
        let p = two_stage();
        let m = p.build_model();
        let s = m.subset(0, 1);
        assert_eq!(s.service, m.service_concat);
        let s0 = m.subset(0, 0);
        assert_eq!(s0.service, m.per_node[0].service);
        // Slice backlogs decompose the buffer allocation question.
        assert!(s0.backlog.is_finite());
    }

    #[test]
    fn admissible_rate_respects_budget() {
        let p = two_stage();
        let m = p.build_model();
        let budget = Rat::int(40);
        let r = m.max_admissible_rate(budget).expect("admissible");
        assert!(r.is_positive());
        // Rebuild with that exact rate: the bound stays within budget.
        let mut p2 = two_stage();
        p2.source.rate = r;
        let m2 = p2.build_model();
        assert!(m2.backlog_bound_concat() <= Value::finite(budget));
        // The admissible rate never exceeds the bottleneck.
        assert!(r <= m.bottleneck_rate_min);
    }

    #[test]
    fn per_node_backlogs_reported() {
        let p = two_stage();
        let m = p.build_model();
        let backlogs = m.per_node_backlogs();
        assert_eq!(backlogs.len(), 2);
        assert!(backlogs.iter().all(|(_, b)| b.is_finite()));
    }

    #[test]
    fn cached_build_matches_direct() {
        let mut cache = ModelCache::new();
        for burst in [4i64, 8, 16] {
            let mut p = two_stage();
            p.source.burst = Rat::int(burst);
            let direct = p.build_model();
            let cached = p.build_model_cached(&mut cache);
            assert_eq!(cached.arrival, direct.arrival);
            assert_eq!(cached.service, direct.service);
            assert_eq!(cached.service_concat, direct.service_concat);
            assert_eq!(cached.max_service, direct.max_service);
            assert_eq!(cached.total_latency, direct.total_latency);
            assert_eq!(cached.per_node.len(), direct.per_node.len());
            for (c, d) in cached.per_node.iter().zip(&direct.per_node) {
                assert_eq!(c.arrival, d.arrival);
                assert_eq!(c.service, d.service);
                assert_eq!(c.backlog, d.backlog);
                assert_eq!(c.delay, d.delay);
                assert_eq!(c.regime, d.regime);
            }
        }
    }

    #[test]
    fn prefix_reuse_when_only_last_stage_varies() {
        let mut cache = ModelCache::new();
        let p = two_stage();
        let _ = p.build_model_cached(&mut cache);
        assert_eq!(cache.stats().prefix_misses, 1);

        // Same pipeline again: the full prefix hits.
        let _ = p.build_model_cached(&mut cache);
        assert_eq!(cache.stats().prefix_hits, 1);

        // Vary only the last stage: the leading prefix still hits, and
        // the results match a fresh direct build.
        let mut p2 = two_stage();
        p2.nodes[1].rates = StageRates::fixed(Rat::int(5));
        let cached = p2.build_model_cached(&mut cache);
        assert_eq!(cache.stats().prefix_hits, 2);
        let direct = p2.build_model();
        assert_eq!(cached.service_concat, direct.service_concat);
        assert_eq!(cached.per_node[1].backlog, direct.per_node[1].backlog);
    }

    #[test]
    fn faulted_stage_degrades_concat_bounds_monotonically() {
        // Derating the bottleneck weakens every concatenated bound:
        // lower guaranteed rate, larger delay, larger (or equal)
        // backlog. The degradation flows through the prefix cascade.
        let p = two_stage();
        let base = p.build_model();
        let mut pf = two_stage();
        pf.nodes[1].fault = Some(FaultModel::RateDerate {
            delta: Rat::new(1, 4),
        });
        pf.validate().unwrap();
        let deg = pf.build_model();
        assert_eq!(deg.per_node[1].rate_min, Rat::new(9, 2)); // 6 * 3/4
        assert!(deg.delay_bound_concat() >= base.delay_bound_concat());
        assert!(deg.backlog_bound_concat() >= base.backlog_bound_concat());
        // A stall additionally extends the cascade latency.
        let mut ps = two_stage();
        ps.nodes[0].fault = Some(FaultModel::PeriodicStall {
            budget: Rat::new(1, 10),
            period: Rat::ONE,
        });
        let stalled = ps.build_model();
        assert!(stalled.total_latency > base.total_latency);
    }

    #[test]
    fn fault_is_part_of_the_prefix_cache_key() {
        // A faulted variant of an already-cached pipeline must MISS the
        // full-prefix lookup (same name/rates/jobs, different fault) and
        // produce the same model as a fresh direct build.
        let mut cache = ModelCache::new();
        let p = two_stage();
        let _ = p.build_model_cached(&mut cache);
        let mut pf = two_stage();
        pf.nodes[0].fault = Some(FaultModel::TransientOutage {
            duration: Rat::new(1, 2),
        });
        let cached = pf.build_model_cached(&mut cache);
        assert_eq!(cache.stats().prefix_hits, 0);
        let direct = pf.build_model();
        assert_eq!(cached.service_concat, direct.service_concat);
        assert_eq!(cached.per_node[0].delay, direct.per_node[0].delay);
        // Re-building the faulted pipeline now hits its own entry.
        let _ = pf.build_model_cached(&mut cache);
        assert_eq!(cache.stats().prefix_hits, 1);
    }

    #[test]
    fn cached_throughput_matches_direct() {
        let p = two_stage();
        let m = p.build_model();
        let mut cache = CurveCache::new();
        for h in [1i64, 10, 100, 1000] {
            let direct = m.throughput_over(Rat::int(h));
            let cached = m.throughput_over_with(&mut cache, Rat::int(h));
            assert_eq!(direct.upper, cached.upper);
            assert_eq!(direct.lower, cached.lower);
            assert_eq!(direct.output_loose, cached.output_loose);
        }
        // Here β (rate-latency with zero total latency) and γ (constant
        // rate at the same bottleneck) are the same function, so the
        // interner collapses α⊗β and α⊗γ into ONE conv entry: a single
        // conv + deconv computed, everything else memo hits.
        assert_eq!(cache.stats().op_misses(), 2);
        assert!(cache.stats().op_hits() >= 10);
    }

    #[test]
    fn paper_units_roundtrip() {
        // A bump-in-the-wire-style stage in MiB/s survives normalization.
        let p = Pipeline::new(
            "units",
            Source {
                rate: mib_per_s(100.0),
                burst: mib(1),
            },
            vec![Node::new(
                "encrypt",
                NodeKind::Compute,
                StageRates::new(mib_per_s(56.0), mib_per_s(68.0), mib_per_s(75.0)),
                rat(1, 1_000_000),
                mib(1),
                mib(1),
            )],
        );
        let m = p.build_model();
        assert_eq!(m.bottleneck_rate_min, mib_per_s(56.0));
        assert_eq!(m.regime(), Regime::Overloaded); // 100 > 56
    }

    #[test]
    fn max_admissible_rate_zero_budget() {
        // With a positive source burst, even a zero rate overflows a
        // zero-byte budget: the burst alone is resident at t = 0.
        let m = two_stage().build_model();
        assert_eq!(m.max_admissible_rate(Rat::ZERO), None);

        // A burst-free stream against the same service fits a zero
        // budget (pipeline validation requires burst > 0, so probe the
        // bounds-level function directly with b = 0) — but any
        // positive rate queues during the packetized service latency,
        // so the cap is exactly 0, not None.
        let m = two_stage().build_model();
        let cap = bounds::max_admissible_rate(&m.service_concat, Rat::ZERO, Rat::ZERO)
            .expect("zero burst fits a zero budget");
        assert_eq!(cap, Rat::ZERO);
    }

    #[test]
    fn max_admissible_rate_budget_above_line_rate_needs() {
        // A budget so large no finite-time constraint binds: the cap is
        // the line (bottleneck service) rate, beyond which the true
        // backlog bound is infinite regardless of buffering.
        let m = two_stage().build_model();
        let cap = m
            .max_admissible_rate(Rat::int(1 << 30))
            .expect("huge budget is feasible");
        assert_eq!(cap, m.bottleneck_rate_min);
        // And the cap is achievable: at the cap the backlog bound is
        // finite (critical regime, not overloaded).
        assert!(cap.is_positive());
    }

    #[test]
    fn max_admissible_rate_is_exact_at_the_cap() {
        // At the returned cap the backlog bound meets the budget; just
        // above it (1%), the bound exceeds the budget — the half-plane
        // intersection is tight, not merely safe.
        let p = two_stage();
        let m = p.build_model();
        let budget = Rat::int(64);
        let cap = m.max_admissible_rate(budget).unwrap();
        let at = |r: Rat| {
            let alpha = shapes::leaky_bucket(r, p.source.burst);
            crate::ops::vertical_deviation(&alpha, &m.service_concat)
        };
        assert!(at(cap) <= Value::finite(budget));
        if cap < m.bottleneck_rate_min {
            let above = cap * rat(101, 100);
            assert!(at(above) > Value::finite(budget));
        }
    }

    #[test]
    fn invalidate_suffix_evicts_only_stale_entries() {
        let mut cache = ModelCache::new();
        let p = two_stage();
        let _ = p.build_model_cached(&mut cache);
        assert_eq!(cache.prefix_entries(), 2); // prefixes of len 1 and 2

        // A second, unrelated pipeline shares the cache.
        let mut q = two_stage();
        q.source.rate = Rat::int(3);
        let _ = q.build_model_cached(&mut cache);
        assert_eq!(cache.prefix_entries(), 4);

        // Reconfiguring p's stage 1 (index 1) keeps the len-1 prefix.
        let evicted = cache.invalidate_suffix(&p, 1);
        assert_eq!(evicted, 1);
        assert_eq!(cache.prefix_entries(), 3);

        // q's entries are untouched: rebuilding q is all prefix hits.
        let before = cache.stats().prefix_hits;
        let _ = q.build_model_cached(&mut cache);
        assert_eq!(cache.stats().prefix_hits, before + 1);

        // Rebuilding p resumes from the surviving len-1 prefix (a hit,
        // not a from-scratch miss) and re-memoizes the evicted suffix.
        let (hits, misses) = (cache.stats().prefix_hits, cache.stats().prefix_misses);
        let _ = p.build_model_cached(&mut cache);
        assert_eq!(cache.stats().prefix_hits, hits + 1);
        assert_eq!(cache.stats().prefix_misses, misses);
        assert_eq!(cache.prefix_entries(), 4);
    }
}

//! Batch what-if analysis: a bump-in-the-wire bounds surface over
//! compressor block size × network link rate, evaluated by the
//! `nc-sweep` engine (parallel fan-out, per-worker model caches).
//!
//! The grid defaults to 16×16 (256 points); set `SWEEP_GRID=AxB` for
//! other sizes (e.g. `SWEEP_GRID=4x4` for a CI smoke run). Emits
//! `results/sweep_bitw.csv` and prints cache telemetry.

use std::time::Instant;

/// Grid dimensions from `SWEEP_GRID=AxB`, default 16×16.
fn grid_dims() -> (usize, usize) {
    if let Ok(s) = std::env::var("SWEEP_GRID") {
        if let Some((a, b)) = s.split_once('x') {
            if let (Ok(a), Ok(b)) = (a.trim().parse(), b.trim().parse()) {
                if a >= 1 && b >= 1 {
                    return (a, b);
                }
            }
        }
        eprintln!("SWEEP_GRID must look like 16x16; using default");
    }
    (16, 16)
}

fn main() {
    let (nx, ny) = grid_dims();
    let spec = nc_bench::bitw_sweep_spec(nx, ny);
    let t0 = Instant::now();
    // NC_THREADS pins the fan-out width; the surface (and hence the
    // CSV) is byte-identical for every worker count.
    let surface = nc_bench::with_nc_threads(|| nc_sweep::run(&spec));
    let dt = t0.elapsed();
    nc_bench::emit("sweep_bitw.csv", &surface.to_csv());
    let s = surface.stats;
    println!(
        "BITW sweep: {} points ({nx}x{ny}) in {dt:.2?}",
        surface.points.len()
    );
    println!(
        "  cache: prefix {}/{} hit/miss, ops {}/{} hit/miss, {} curves interned",
        s.prefix_hits,
        s.prefix_misses,
        s.op_hits(),
        s.op_misses(),
        s.interned
    );
}

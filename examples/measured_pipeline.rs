//! The paper's complete methodology, end to end, on *this machine*:
//!
//! 1. **measure** each kernel in isolation (LZ4 compress, AES-256-CBC
//!    encrypt/decrypt, LZ4 decompress) — the paper's Table 2 step;
//! 2. **model** the pipeline those kernels form with network calculus;
//! 3. **simulate** the same pipeline with the discrete-event engine;
//! 4. **validate**: the simulated run respects the modeled bounds.
//!
//! Unlike `bump_in_the_wire.rs` (which reproduces the paper's numbers
//! from its published FPGA rates), everything here is measured live, so
//! the absolute numbers depend on your CPU — the *containment* checks
//! are what must always hold.
//!
//! Run with `cargo run --release --example measured_pipeline`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use streamcalc::core::num::Rat;
use streamcalc::core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use streamcalc::core::units::{fmt_bytes, fmt_rate, fmt_time};
use streamcalc::core::Value;
use streamcalc::streamsim::{simulate, SimConfig};
use streamcalc::workloads::aes::{cbc_decrypt_raw, cbc_encrypt_raw, Aes256};
use streamcalc::workloads::lz4;
use streamcalc::workloads::measure::{measure_repeated, StageMeasurement};

const CHUNK: usize = 256 << 10;

fn text_like(len: usize) -> Vec<u8> {
    let vocab: [&[u8]; 10] = [
        b"stream", b"data", b"node", b"queue", b"rate", b"burst", b"delay", b"curve", b"bound",
        b"fpga",
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(vocab[rng.gen_range(0..vocab.len())]);
        v.push(b' ');
    }
    v.truncate(len);
    v
}

fn stage_node(name: &str, m: &StageMeasurement, job: i64) -> Node {
    // Guard against timer jitter: clamp the triple into valid order.
    let lo = m.min.min(m.avg);
    let hi = m.max.max(m.avg);
    // Integer byte rates: sub-ppb rounding keeps the exact arithmetic
    // chains compact.
    Node::new(
        name,
        NodeKind::Compute,
        StageRates::new(
            Rat::int(lo.floor() as i64),
            Rat::int(m.avg.clamp(lo, hi).round() as i64),
            Rat::int(hi.ceil() as i64),
        ),
        Rat::ZERO,
        Rat::int(job),
        Rat::int(job),
    )
}

fn main() {
    // ---- 1. Measure (the Table 2 step) -----------------------------
    println!(
        "measuring kernels in isolation ({} KiB chunks)...",
        CHUNK >> 10
    );
    let data = text_like(CHUNK);
    let m_compress = measure_repeated(&data, 12, 3, |c| lz4::compress(c).len());

    let aes = Aes256::new(&[5u8; 32]);
    let iv = [1u8; 16];
    let mut buf = vec![0u8; CHUNK];
    let m_encrypt = measure_repeated(&data, 12, 3, |c| {
        buf.copy_from_slice(c);
        cbc_encrypt_raw(&aes, &iv, &mut buf);
        buf[0]
    });
    let mut buf2 = buf.clone();
    let m_decrypt = measure_repeated(&buf.clone(), 12, 3, |c| {
        buf2.copy_from_slice(c);
        let _ = cbc_decrypt_raw(&aes, &iv, &mut buf2);
        buf2[0]
    });
    let compressed = lz4::compress(&data);
    let m_decompress = measure_repeated(&compressed, 12, 3, |c| {
        lz4::decompress(c, CHUNK).map(|v| v.len()).unwrap_or(0)
    });

    for (name, m) in [
        ("compress", &m_compress),
        ("encrypt", &m_encrypt),
        ("decrypt", &m_decrypt),
        ("decompress", &m_decompress),
    ] {
        let (lo, avg, hi) = m.mib_per_s();
        println!("  {name:<11} {lo:>8.0} / {avg:>8.0} / {hi:>8.0} MiB/s (min/avg/max)");
    }

    // ---- 2. Model ---------------------------------------------------
    // Offered load: 60% of the measured bottleneck min rate, so the
    // system is provably underloaded and the bounds are exact.
    let bottleneck_min = [
        m_compress.min,
        m_encrypt.min,
        m_decrypt.min,
        m_decompress.min,
    ]
    .into_iter()
    .fold(f64::INFINITY, f64::min);
    let offered = 0.6 * bottleneck_min;
    let job = CHUNK as i64;
    let pipeline = Pipeline::new(
        "measured-on-this-machine",
        Source {
            rate: Rat::int(offered.round() as i64),
            burst: Rat::int(job),
        },
        vec![
            stage_node("compress", &m_compress, job),
            stage_node("encrypt", &m_encrypt, job),
            stage_node("decrypt", &m_decrypt, job),
            stage_node("decompress", &m_decompress, job),
        ],
    );
    pipeline.validate().expect("measured pipeline valid");
    let model = pipeline.build_model();
    println!("\nnetwork-calculus model ({:?}):", model.regime());
    println!(
        "  bottleneck (min/avg/max): {} / {} / {}",
        fmt_rate(Value::finite(model.bottleneck_rate_min)),
        fmt_rate(Value::finite(model.bottleneck_rate_avg)),
        fmt_rate(Value::finite(model.bottleneck_rate_max)),
    );
    let x = model.backlog_bound_concat();
    let d = model.delay_bound_concat();
    println!("  backlog bound x = {}", fmt_bytes(x));
    println!("  delay bound   d = {}", fmt_time(d));

    // ---- 3. Simulate -------------------------------------------------
    let sim = simulate(
        &pipeline,
        &SimConfig {
            seed: 17,
            total_input: 256 << 20,
            source_chunk: Some(job as u64),
            ..SimConfig::default()
        },
    );
    println!(
        "\nsimulation (256 MiB at {:.0} MiB/s offered):",
        offered / 1048576.0
    );
    println!("  throughput   = {:.0} MiB/s", sim.throughput / 1048576.0);
    println!(
        "  delay range  = [{:.3}, {:.3}] ms",
        sim.delay_min * 1e3,
        sim.delay_max * 1e3
    );
    println!(
        "  peak backlog = {}",
        fmt_bytes(Value::finite(Rat::from_f64(sim.peak_backlog)))
    );
    for n in &sim.per_node {
        println!("    {:<11} utilization {:.2}", n.name, n.utilization);
    }

    // ---- 4. Validate --------------------------------------------------
    assert!(
        sim.delay_max <= d.to_f64(),
        "sim delay {} exceeds bound {}",
        sim.delay_max,
        d.to_f64()
    );
    assert!(
        sim.peak_backlog <= x.to_f64(),
        "sim backlog {} exceeds bound {}",
        sim.peak_backlog,
        x.to_f64()
    );
    println!("\nmeasure -> model -> simulate -> bounds hold: OK");
}
